"""Impact of completion queues (paper §3.2.3): LatCQ, BwCQ, CpuCQ.

Receive completions are discovered through a completion queue
associated with the receive work queues.  ``LatCQ − Lat`` isolates the
CQ overhead: the paper reports 2–5 µs for Berkeley VIA and negligible
overhead for M-VIA and cLAN.
"""

from __future__ import annotations

from ..providers.registry import ProviderSpec
from ..units import paper_size_sweep
from ..via.constants import WaitMode
from .harness import TransferConfig, run_bandwidth, run_latency
from .metrics import BenchResult, Measurement

__all__ = ["cq_latency", "cq_bandwidth", "cq_overhead"]


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def cq_latency(provider: "str | ProviderSpec",
               sizes: list[int] | None = None,
               mode: WaitMode = WaitMode.POLL,
               **overrides) -> BenchResult:
    sizes = sizes or paper_size_sweep()
    points = [
        run_latency(provider, TransferConfig(size=s, mode=mode,
                                             use_recv_cq=True, **overrides))
        for s in sizes
    ]
    return BenchResult("cq_latency", _name(provider), points,
                       {"mode": mode.value})


def cq_bandwidth(provider: "str | ProviderSpec",
                 sizes: list[int] | None = None,
                 mode: WaitMode = WaitMode.POLL,
                 **overrides) -> BenchResult:
    sizes = sizes or paper_size_sweep()
    points = [
        run_bandwidth(provider, TransferConfig(size=s, mode=mode,
                                               use_recv_cq=True, **overrides))
        for s in sizes
    ]
    return BenchResult("cq_bandwidth", _name(provider), points,
                       {"mode": mode.value})


def cq_overhead(provider: "str | ProviderSpec",
                sizes: list[int] | None = None,
                mode: WaitMode = WaitMode.POLL) -> BenchResult:
    """LatCQ − Lat per size: the §4.3.3 comparison, directly."""
    sizes = sizes or paper_size_sweep()
    points = []
    for s in sizes:
        base = run_latency(provider, TransferConfig(size=s, mode=mode))
        with_cq = run_latency(provider, TransferConfig(size=s, mode=mode,
                                                       use_recv_cq=True))
        points.append(Measurement(
            param=s,
            extra={
                "lat_us": base.latency_us,
                "lat_cq_us": with_cq.latency_us,
                "overhead_us": with_cq.latency_us - base.latency_us,
            },
        ))
    return BenchResult("cq_overhead", _name(provider), points,
                       {"mode": mode.value})
