"""Impact of asynchronous message handling (paper §3.2.5 / TR [6]):
AsyLat.

The base tests always pre-post receive descriptors.  Real applications
race: data can arrive *before* its receive descriptor is posted.  What
happens then is a core design choice:

- **kernel buffering** (M-VIA): the message is staged and delivered
  when the descriptor shows up — a copy, but no loss;
- **NAK + retry** (cLAN, reliable modes): the sender NIC retransmits
  until a descriptor is available — latency quantised by the retry
  backoff;
- **drop** (Berkeley VIA, unreliable): the message is simply lost.

The benchmark sends one message and posts the matching receive
``delay`` µs later, measuring delivery latency (from send post to
receive completion) and whether the message survived at all.
"""

from __future__ import annotations

from ..providers.registry import ProviderSpec, Testbed
from ..via.constants import WaitMode
from ..via.descriptor import Descriptor
from ..via.errors import VipTimeout
from .metrics import BenchResult, Measurement

__all__ = ["DEFAULT_DELAYS", "async_latency"]

DEFAULT_DELAYS = (0.0, 25.0, 100.0, 400.0)

_TIMEOUT = 50_000.0  # declare the message lost after 50 ms


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def _one_trial(provider, size: int, delay: float, seed: int) -> Measurement:
    tb = Testbed(provider, seed=seed)
    out: dict = {}

    def client_body():
        h = tb.open(tb.node_names[0], "client")
        vi = yield from h.create_vi()
        buf = h.alloc(max(size, 4))
        mh = yield from h.register_mem(buf)
        yield from h.connect(vi, tb.node_names[1], 31)
        segs = [h.segment(buf, mh, 0, size)]
        out["t_send"] = tb.now
        yield from h.post_send(vi, Descriptor.send(segs))
        try:
            yield from h.send_wait(vi, WaitMode.POLL, timeout=_TIMEOUT)
        except VipTimeout:
            out["send_timeout"] = True

    def server_body():
        h = tb.open(tb.node_names[1], "server")
        vi = yield from h.create_vi()
        buf = h.alloc(max(size, 4))
        mh = yield from h.register_mem(buf)
        req = yield from h.connect_wait(31)
        yield from h.accept(req, vi)
        # deliberately late receive posting
        yield tb.sim.timeout(delay)
        segs = [h.segment(buf, mh, 0, size)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        try:
            desc = yield from h.recv_wait(vi, WaitMode.POLL, timeout=_TIMEOUT)
            out["t_done"] = tb.now
            out["length"] = desc.control.length
        except VipTimeout:
            out["lost"] = True

    cproc = tb.spawn(client_body(), "client")
    sproc = tb.spawn(server_body(), "server")
    tb.run(cproc)
    tb.run(sproc)
    delivered = "t_done" in out
    engine = tb.provider(tb.node_names[0]).engine
    return Measurement(
        param=delay,
        latency_us=(out["t_done"] - out["t_send"]) if delivered else None,
        extra={
            "delivered": delivered,
            "retransmissions": engine.retransmissions,
        },
    )


def async_latency(provider: "str | ProviderSpec",
                  size: int = 1024,
                  delays=DEFAULT_DELAYS,
                  seed: int = 0) -> BenchResult:
    """Delivery latency vs receive-posting delay (one message each)."""
    points = [_one_trial(provider, size, d, seed) for d in delays]
    return BenchResult("async_latency", _name(provider), points,
                       {"size": size})
