"""Sockets-layer benchmarks (the paper's ref [17]: High Performance
Sockets over VI Architecture).

Measures the byte-stream layer built on VIA: end-to-end throughput as a
function of the stream's chunking size.  Small chunks pay per-message
overhead; chunks above the eager threshold switch the underlying
message layer to rendezvous and pay handshakes instead — the tuning
surface a sockets-over-VIA implementor works with.
"""

from __future__ import annotations

from ..layers.msg import MsgEndpoint
from ..layers.stream import ViaStream
from ..providers.registry import ProviderSpec, Testbed
from .metrics import BenchResult, Measurement

__all__ = ["DEFAULT_CHUNKS", "stream_throughput"]

DEFAULT_CHUNKS = (512, 2048, 4096, 16384)


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def stream_throughput(provider: "str | ProviderSpec",
                      chunks=DEFAULT_CHUNKS,
                      total_bytes: int = 200_000,
                      eager_size: int = 4096,
                      seed: int = 0) -> BenchResult:
    """Stream ``total_bytes`` and report MB/s per chunk size."""
    points = []
    for chunk in chunks:
        bw = _stream_once(provider, chunk, total_bytes, eager_size, seed)
        points.append(Measurement(param=chunk, bandwidth_mbs=bw))
    return BenchResult("stream_throughput", _name(provider), points,
                       {"total_bytes": total_bytes,
                        "eager_size": eager_size})


def _stream_once(provider, chunk, total_bytes, eager_size, seed) -> float:
    tb = Testbed(provider, seed=seed)
    out: dict = {}
    payload = bytes(i % 256 for i in range(total_bytes))

    def sender():
        h = tb.open("node0", "sender")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi, eager_size=eager_size)
        yield from msg.setup()
        yield from h.connect(vi, "node1", 91)
        stream = ViaStream(msg, chunk=chunk)
        t0 = tb.now
        yield from stream.write(payload)
        ack = yield from stream.read(1)     # receiver confirms the tail
        assert ack == b"\x06"
        out["bw"] = total_bytes / (tb.now - t0)

    def receiver():
        h = tb.open("node1", "receiver")
        vi = yield from h.create_vi()
        msg = MsgEndpoint(h, vi, eager_size=eager_size)
        yield from msg.setup()
        req = yield from h.connect_wait(91)
        yield from h.accept(req, vi)
        stream = ViaStream(msg, chunk=chunk)
        data = yield from stream.read(total_bytes)
        assert data == payload, "stream corrupted"
        yield from stream.write(b"\x06")

    sproc = tb.spawn(sender(), "sender")
    tb.spawn(receiver(), "receiver")
    tb.run(sproc)
    return out["bw"]
