"""Category 3: client-server programming-model benchmark (paper §3.3.1,
Fig. 7).

A synchronous request/reply transaction test: the client sends a
fixed-size request and receives a variable-size reply, using two
distinct buffers; a new request goes out only after the entire previous
reply arrived.  Reported as transactions per second — the paper relates
it to the RPC/method-call rate sustainable on one VI connection.
"""

from __future__ import annotations

from ..providers.registry import ProviderSpec, Testbed
from ..units import US_PER_S, paper_size_sweep
from ..via.constants import WaitMode
from ..via.descriptor import Descriptor
from .metrics import BenchResult, Measurement

__all__ = ["DEFAULT_REQUEST_SIZES", "client_server"]

DEFAULT_REQUEST_SIZES = (16, 256)


def _name(provider) -> str:
    return provider if isinstance(provider, str) else provider.name


def client_server(provider: "str | ProviderSpec",
                  request_size: int = 16,
                  reply_sizes: list[int] | None = None,
                  transactions: int = 24,
                  warmup: int = 3,
                  mode: WaitMode = WaitMode.POLL,
                  seed: int = 0) -> BenchResult:
    """Transactions/second vs reply size for one request size."""
    reply_sizes = reply_sizes or paper_size_sweep()
    points = []
    for reply in reply_sizes:
        tps = _transaction_test(provider, request_size, reply, transactions,
                                warmup, mode, seed)
        points.append(Measurement(param=reply, tps=tps))
    return BenchResult("client_server", _name(provider), points,
                       {"request_size": request_size, "mode": mode.value})


def _transaction_test(provider, request_size: int, reply_size: int,
                      transactions: int, warmup: int, mode: WaitMode,
                      seed: int) -> float:
    tb = Testbed(provider, seed=seed)
    out: dict = {}
    total = warmup + transactions

    def client_body():
        h = tb.open(tb.node_names[0], "client")
        vi = yield from h.create_vi()
        req_buf = h.alloc(max(request_size, 4))
        rep_buf = h.alloc(max(reply_size, 4))
        req_mh = yield from h.register_mem(req_buf)
        rep_mh = yield from h.register_mem(rep_buf)
        yield from h.connect(vi, tb.node_names[1], 61)
        req_segs = [h.segment(req_buf, req_mh, 0, request_size)]
        rep_segs = [h.segment(rep_buf, rep_mh, 0, reply_size)]
        for i in range(total):
            if i == warmup:
                out["t0"] = tb.now
            yield from h.post_recv(vi, Descriptor.recv(rep_segs))
            yield from h.post_send(vi, Descriptor.send(req_segs))
            yield from h.send_wait(vi, mode)
            yield from h.recv_wait(vi, mode)  # the entire reply
        out["t1"] = tb.now
        yield from h.disconnect(vi)

    def server_body():
        h = tb.open(tb.node_names[1], "server")
        vi = yield from h.create_vi()
        req_buf = h.alloc(max(request_size, 4))
        rep_buf = h.alloc(max(reply_size, 4))
        req_mh = yield from h.register_mem(req_buf)
        rep_mh = yield from h.register_mem(rep_buf)
        req_segs = [h.segment(req_buf, req_mh, 0, request_size)]
        rep_segs = [h.segment(rep_buf, rep_mh, 0, reply_size)]
        yield from h.post_recv(vi, Descriptor.recv(req_segs))
        req = yield from h.connect_wait(61)
        yield from h.accept(req, vi)
        for i in range(total):
            yield from h.recv_wait(vi, mode)
            if i + 1 < total:
                yield from h.post_recv(vi, Descriptor.recv(req_segs))
            yield from h.post_send(vi, Descriptor.send(rep_segs))
            yield from h.send_wait(vi, mode)

    cproc = tb.spawn(client_body(), "client")
    sproc = tb.spawn(server_body(), "server")
    tb.run(cproc)
    tb.run(sproc)
    elapsed = out["t1"] - out["t0"]
    return transactions / (elapsed / US_PER_S)
