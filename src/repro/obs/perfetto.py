"""Chrome-trace (Perfetto JSON) export of tracer timelines and spans.

Produces the legacy Chrome ``traceEvents`` JSON that Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` load directly:

- each simulated **node** becomes a process (``pid``), named via ``M``
  metadata events;
- each trace **category** on a node becomes a thread (``tid``) so the
  host / NIC / wire / VIA timelines stack as separate tracks;
- :class:`~repro.sim.trace.TraceEvent` records become instant events
  (``ph: "i"``) and :class:`~repro.obs.spans.Span` intervals become
  complete events (``ph: "X"``).

Timestamps pass through unscaled: the simulation clock is already in
microseconds, Chrome's native trace unit.

Everything is emitted deterministically — nodes, categories, and ties
are ordered by first appearance in the (already deterministic) event
stream, and the JSON is serialised with sorted keys and fixed
separators — so an exported file is byte-identical across runs and
``--jobs`` values and can be pinned as a test fixture.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from ..sim.trace import TraceEvent, Tracer
from .spans import Span

__all__ = ["chrome_trace", "dumps_trace", "write_chrome_trace"]


class _Ids:
    """Stable pid/tid assignment by first appearance."""

    def __init__(self) -> None:
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[str, str], int] = {}

    def pid(self, node: str) -> int:
        pid = self._pids.get(node)
        if pid is None:
            pid = self._pids[node] = len(self._pids) + 1
        return pid

    def tid(self, node: str, category: str) -> int:
        key = (node, category)
        tid = self._tids.get(key)
        if tid is None:
            tid = len([k for k in self._tids if k[0] == node]) + 1
            self._tids[key] = tid
        return tid

    def metadata(self) -> list[dict]:
        events: list[dict] = []
        for node, pid in self._pids.items():
            events.append({
                "args": {"name": node or "sim"},
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
            })
        for (node, category), tid in self._tids.items():
            events.append({
                "args": {"name": category},
                "name": "thread_name",
                "ph": "M",
                "pid": self._pids[node],
                "tid": tid,
            })
        return events


def _event_args(info: dict) -> dict:
    """Chrome-trace args must be JSON-safe; stringify anything exotic."""
    out = {}
    for k in sorted(info):
        v = info[k]
        out[k] = v if isinstance(v, (int, float, str, bool, type(None))) else str(v)
    return out


def chrome_trace(events: "Iterable[TraceEvent]" = (),
                 spans: "Iterable[Span]" = (),
                 meta: dict | None = None) -> dict:
    """Build the Chrome-trace document as a plain dict."""
    ids = _Ids()
    trace_events: list[dict] = []
    for ev in events:
        trace_events.append({
            "args": _event_args(ev.info),
            "cat": ev.category,
            "name": ev.label,
            "ph": "i",
            "pid": ids.pid(ev.node),
            "s": "t",                      # thread-scoped instant
            "tid": ids.tid(ev.node, ev.category),
            "ts": ev.t,
        })
    for sp in spans:
        trace_events.append({
            "args": _event_args(sp.args),
            "cat": sp.category,
            "dur": sp.duration,
            "name": sp.name,
            "ph": "X",
            "pid": ids.pid(sp.node),
            "tid": ids.tid(sp.node, sp.category),
            "ts": sp.start,
        })
    doc: dict[str, Any] = {
        "displayTimeUnit": "ns",
        "traceEvents": ids.metadata() + trace_events,
    }
    if meta:
        doc["metadata"] = meta
    return doc


def dumps_trace(events: "Iterable[TraceEvent] | Tracer" = (),
                spans: "Iterable[Span]" = (),
                meta: dict | None = None) -> str:
    """Deterministic JSON serialisation of :func:`chrome_trace`."""
    if isinstance(events, Tracer):
        events = events.events
    doc = chrome_trace(events, spans, meta)
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def write_chrome_trace(path, events: "Iterable[TraceEvent] | Tracer" = (),
                       spans: "Iterable[Span]" = (),
                       meta: dict | None = None) -> None:
    """Write a Perfetto-loadable trace file (open at ui.perfetto.dev)."""
    with open(path, "w") as fh:
        fh.write(dumps_trace(events, spans, meta))
