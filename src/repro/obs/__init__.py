"""repro.obs — the observability layer.

Four pieces, all deterministic by construction:

- :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket
  histograms in a :class:`MetricsRegistry` with byte-stable JSON
  snapshots;
- :mod:`repro.obs.spans` — profiling spans over simulated time, both
  live-recorded and reconstructed from tracer timelines;
- :mod:`repro.obs.perfetto` — Chrome-trace (Perfetto JSON) export of
  tracer events and spans;
- :mod:`repro.obs.harvest` / :mod:`repro.obs.profile` — walk a finished
  testbed into a registry, and the canonical profiled ping-pong behind
  ``vibe profile``.

Instrumentation is zero-cost when disabled: the simulator's ``tracer``
and ``metrics`` attributes default to ``None`` and every hot-path site
is a single attribute check.
"""

from .harvest import harvest_into, harvest_testbed
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .perfetto import chrome_trace, dumps_trace, write_chrome_trace
from .profile import (
    TransferProfile,
    combined_metrics_json,
    combined_trace_json,
    profile_transfer,
    run_metadata,
)
from .spans import PhaseBoundary, Span, SpanRecorder, phase_spans

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Span",
    "SpanRecorder",
    "PhaseBoundary",
    "phase_spans",
    "chrome_trace",
    "dumps_trace",
    "write_chrome_trace",
    "harvest_testbed",
    "harvest_into",
    "TransferProfile",
    "profile_transfer",
    "run_metadata",
    "combined_trace_json",
    "combined_metrics_json",
]
