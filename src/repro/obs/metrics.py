"""Metrics primitives: counters, gauges, fixed-bucket histograms.

The observability layer's contract is *determinism first*: every
primitive here produces byte-identical snapshots for byte-identical
simulations, so exported metrics files double as regression fixtures
(``tests/test_determinism.py``).  That rules out wall-clock timestamps,
hash-ordered iteration, and sampling — snapshots are sorted by metric
name, histogram buckets are fixed at creation, and quantiles are
computed with a deterministic linear-interpolation rule over the bucket
boundaries.

A :class:`MetricsRegistry` is the unit of collection: benchmarks create
one per run (or let :func:`repro.obs.harvest.harvest_testbed` build one
from a finished testbed) and serialise it with :meth:`snapshot` /
:meth:`to_json`.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Iterable, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_LATENCY_BUCKETS", "DEFAULT_SIZE_BUCKETS"]

#: microsecond latency buckets: 0.5 us .. ~8 ms in powers of two
DEFAULT_LATENCY_BUCKETS = tuple(0.5 * 2 ** i for i in range(15))

#: byte-size buckets: 4 B .. 1 MiB in powers of four
DEFAULT_SIZE_BUCKETS = tuple(4 ** i for i in range(1, 11))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, by: "int | float" = 1) -> None:
        if by < 0:
            raise ValueError(f"counter {self.name}: negative increment {by}")
        self.value += by

    def snapshot(self) -> Any:
        return self.value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "value", "max", "min")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max = 0.0
        self.min = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def snapshot(self) -> Any:
        return {"value": self.value, "max": self.max, "min": self.min}


class Histogram:
    """A fixed-bucket histogram with deterministic quantiles.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last edge.
    Bucket layout is frozen at construction, so two histograms built
    from the same samples are structurally identical regardless of
    observation order — which also makes :meth:`merge` associative and
    commutative (bucket-wise addition), pinned by the property tests in
    ``tests/test_prop_obs.py``.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "vmin", "vmax")

    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError(f"histogram {name}: needs at least one bucket bound")
        b = tuple(float(x) for x in bounds)
        if any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ValueError(f"histogram {name}: bounds must be strictly increasing")
        self.name = name
        self.bounds = b
        self.counts = [0] * (len(b) + 1)   # final slot = overflow
        self.count = 0
        self.total = 0.0
        self.vmin: float | None = None
        self.vmax: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    def observe_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Deterministic quantile estimate from the bucket counts.

        Walks the cumulative distribution to the bucket containing rank
        ``q * count`` and interpolates linearly within it.  The lowest
        bucket interpolates from ``vmin`` (the true observed minimum)
        and the overflow bucket returns ``vmax``, so q=0 and q=1 are
        exact and everything in between is monotone in ``q``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        assert self.vmin is not None and self.vmax is not None
        rank = q * self.count
        cum = 0.0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cum + c >= rank:
                # the first nonempty bucket contains vmin, which is a
                # tighter lower edge than the bucket boundary; likewise
                # the overflow bucket's only known upper edge is vmax
                if i == len(self.bounds):       # overflow bucket
                    lo = self.vmin if cum == 0 else self.bounds[-1]
                    hi = self.vmax
                else:
                    lo = self.vmin if cum == 0 else self.bounds[i - 1]
                    hi = min(self.bounds[i], self.vmax)
                frac = (rank - cum) / c
                if frac <= 0.0:               # exact edges: float
                    return lo                 # lo + (hi-lo)*1.0 can
                if frac >= 1.0:               # round away from hi
                    return hi
                return lo + (hi - lo) * frac
            cum += c
        return self.vmax

    def merge(self, other: "Histogram") -> "Histogram":
        """Bucket-wise sum; both histograms must share the same bounds."""
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({self.name} vs {other.name})"
            )
        out = Histogram(self.name, self.bounds)
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.count = self.count + other.count
        out.total = self.total + other.total
        mins = [m for m in (self.vmin, other.vmin) if m is not None]
        maxs = [m for m in (self.vmax, other.vmax) if m is not None]
        out.vmin = min(mins) if mins else None
        out.vmax = max(maxs) if maxs else None
        return out

    def snapshot(self) -> Any:
        snap: dict[str, Any] = {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "bounds": list(self.bounds),
            "buckets": list(self.counts),
        }
        if self.count:
            snap["p50"] = self.quantile(0.50)
            snap["p90"] = self.quantile(0.90)
            snap["p99"] = self.quantile(0.99)
        return snap


class MetricsRegistry:
    """A named collection of metrics with deterministic serialisation."""

    def __init__(self) -> None:
        self._metrics: dict[str, "Counter | Gauge | Histogram"] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> "Counter | Gauge | Histogram":
        try:
            return self._metrics[name]
        except KeyError:
            raise KeyError(f"no metric named {name!r}") from None

    def _get_or_create(self, name: str, cls, *args):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = self._metrics[name] = cls(name, *args)
        return metric

    def counter(self, name: str) -> Counter:
        """Get-or-create the named counter."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        h = self._get_or_create(name, Histogram, bounds)
        if h.bounds != tuple(float(x) for x in bounds):
            raise ValueError(f"metric {name!r} already registered with "
                             f"different bounds")
        return h

    # -- hot-path conveniences (one dict lookup on the common path) -----
    def inc(self, name: str, by: "int | float" = 1) -> None:
        m = self._metrics.get(name)
        if m is None:
            m = self.counter(name)
        m.inc(by)

    def set_gauge(self, name: str, value: float) -> None:
        m = self._metrics.get(name)
        if m is None:
            m = self.gauge(name)
        m.set(value)

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        m = self._metrics.get(name)
        if m is None:
            m = self.histogram(name, bounds)
        m.observe(value)

    def snapshot(self) -> dict[str, Any]:
        """``{name: {"kind": ..., "value"/...}}``, sorted by name."""
        return {
            name: {"kind": m.kind, **_wrap(m.snapshot())}
            for name, m in sorted(self._metrics.items())
        }

    def to_json(self, meta: dict | None = None) -> str:
        """Deterministic JSON document (sorted keys, compact separators)."""
        doc: dict[str, Any] = {"metrics": self.snapshot()}
        if meta:
            doc["meta"] = meta
        return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def _wrap(snap: Any) -> dict:
    return snap if isinstance(snap, dict) else {"value": snap}
