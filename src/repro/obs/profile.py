"""Canonical instrumented transfer: one profiled poll-mode ping-pong.

:func:`profile_transfer` runs the same scripted ping-pong for every
provider — tracer attached from the very first event, a live metrics
registry on the simulator, explicit application-level spans, and the
breakdown phases reconstructed from the trace — and returns everything
as a :class:`TransferProfile`.  It is the engine behind both the
``vibe profile`` CLI subcommand and the golden-trace regression
fixtures in ``tests/test_golden_trace.py``: the run is fully
deterministic, so its exported JSON is byte-identical across repeats
and ``--jobs`` values.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from ..sim.trace import TraceEvent, Tracer
from ..via.descriptor import Descriptor
from .harvest import harvest_into
from .metrics import MetricsRegistry
from .perfetto import dumps_trace
from .spans import Span, SpanRecorder, phase_spans

__all__ = ["TransferProfile", "profile_transfer", "run_metadata",
           "combined_trace_json", "combined_metrics_json"]

_DISCRIMINATOR = 7


def _reset_id_counters() -> None:
    """Restart the global id allocators (packets, VIs, descriptors, ...).

    The ids are scoped per testbed anyway — the allocators are global
    only as an allocation convenience — but they appear in trace events,
    so a canonical profile run must not inherit whatever offset earlier
    simulations in this process left behind.  Resetting makes the run's
    exported bytes identical whether it is the first simulation of the
    process or the hundredth (and therefore identical across ``--jobs``
    fan-out, where workers start fresh).  Delegates to
    :func:`repro.sim.ids.reset_ids`, which the snapshot layer shares.
    """
    from ..sim.ids import reset_ids

    reset_ids()


def run_metadata(provider: str, params: dict | None = None) -> dict:
    """Deterministic run metadata (no wall-clock timestamps on purpose)."""
    from .. import __version__

    return {
        "package": "repro",
        "version": __version__,
        "provider": provider,
        "params": dict(params or {}),
    }


@dataclass
class TransferProfile:
    """Everything one profiled ping-pong produced."""

    provider: str
    size: int
    seed: int
    rtt_us: float
    events: list[TraceEvent]
    spans: list[Span]
    registry: MetricsRegistry
    meta: dict

    def trace_json(self) -> str:
        """Perfetto-loadable Chrome-trace JSON (deterministic bytes)."""
        return dumps_trace(self.events, self.spans, meta=self.meta)

    def metrics_json(self) -> str:
        return self.registry.to_json(meta=self.meta)

    def summary(self) -> str:
        lines = [f"profile: {self.provider}, {self.size} B ping-pong "
                 f"(rtt {self.rtt_us:.2f} us)"]
        phases = [s for s in self.spans if s.category == "phase"]
        total = sum(s.duration for s in phases)
        for s in phases:
            share = s.duration / total if total else 0.0
            lines.append(f"  {s.name:<14s} {s.duration:8.2f} us  {share:6.1%}")
        lines.append(f"  {'one-way total':<14s} {total:8.2f} us")
        lines.append(f"  events traced  {len(self.events):8d}")
        lines.append(f"  metrics        {len(self.registry):8d}")
        ff_us = self._gauge("sim.ff_time_us")
        if ff_us:
            # fast-forwarded runs only; packet-mode output keeps its bytes
            now_us = self._gauge("sim.now_us") or 1.0
            skipped = int(self._gauge("sim.ff_events_skipped") or 0)
            lines.append(f"  fast-forward   {ff_us:8.2f} us "
                         f"({ff_us / now_us:6.1%} of simulated time, "
                         f"~{skipped} events skipped)")
        retx = self._counter_total("via.", ".retransmissions")
        naks = self._counter_total("via.", ".naks_sent")
        dups = self._counter_total("via.", ".drops")
        wire = self._counter_total("wire.", ".drops")
        if retx or naks or dups or wire:
            # only faulted runs grow this section, so lossless output
            # stays byte-identical to earlier releases
            lines.append(f"  reliability    retx={retx} naks={naks} "
                         f"dup_drops={dups} wire_drops={wire}")
        return "\n".join(lines)

    def _gauge(self, name: str) -> float | None:
        try:
            return float(self.registry.get(name).value)
        except KeyError:
            return None

    def _counter_total(self, prefix: str, suffix: str) -> int:
        total = 0
        for name in self.registry.names():
            if name.startswith(prefix) and name.endswith(suffix):
                total += int(self.registry.get(name).value)
        return total


def profile_transfer(provider, size: int = 256, seed: int = 0,
                     loss_rate: float = 0.0,
                     reliability=None,
                     fidelity: str = "packet") -> TransferProfile:
    """Run the canonical profiled poll-mode ping-pong on ``provider``.

    ``loss_rate`` injects wire loss and ``reliability`` picks the VI
    level (a :class:`~repro.via.constants.Reliability`); combine them to
    profile the retransmission machinery.  A lossy run with unreliable
    VIs can drop the only message and never finish — callers must pick
    a reliable level when ``loss_rate > 0``.

    ``fidelity`` other than ``"packet"`` arms flow-level fast-forward;
    an attached tracer would force every message down the packet path,
    so fast-forwarded profiles skip per-event tracing (the trace export
    is empty) and instead report the fraction of simulated time spent
    fast-forwarded in the summary and metrics.
    """
    from ..models.breakdown import PHASE_BOUNDARIES
    from ..providers.registry import Testbed, get_spec

    _reset_id_counters()
    tb = Testbed(provider, seed=seed,
                 loss_rate=loss_rate if loss_rate else None,
                 fidelity=fidelity)
    tracer = Tracer()
    if fidelity == "packet":
        tb.sim.tracer = tracer            # attached before the handshake
    registry = MetricsRegistry()
    tb.sim.metrics = registry
    rec = SpanRecorder(tb.sim)
    out: dict = {}

    def client():
        with rec.span("setup", node="node0"):
            h = tb.open("node0", "client")
            vi = yield from h.create_vi(reliability=reliability)
            region = h.alloc(max(size, 4))
            mh = yield from h.register_mem(region)
        segs = [h.segment(region, mh, 0, size)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        with rec.span("connect", node="node0"):
            yield from h.connect(vi, "node1", _DISCRIMINATOR)
        rec.begin("rtt", node="node0")
        yield from h.post_send(vi, Descriptor.send(segs))
        yield from h.send_wait(vi)
        yield from h.recv_wait(vi)
        out["rtt"] = rec.end("rtt", node="node0", size=size).duration
        yield from h.disconnect(vi)

    def server():
        with rec.span("setup", node="node1"):
            h = tb.open("node1", "server")
            vi = yield from h.create_vi(reliability=reliability)
            region = h.alloc(max(size, 4))
            mh = yield from h.register_mem(region)
        segs = [h.segment(region, mh, 0, size)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(_DISCRIMINATOR)
        yield from h.accept(req, vi)
        with rec.span("serve", node="node1"):
            yield from h.recv_wait(vi)
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)

    cproc = tb.spawn(client(), "client")
    sproc = tb.spawn(server(), "server")
    tb.run(cproc)
    tb.run(sproc)

    harvest_into(registry, tb)
    # first-match anchors: the canonical run is cold, so the first
    # occurrence of each marker is the client -> server leg.  Fast-
    # forwarded runs traced nothing, so there are no phases to anchor.
    if fidelity == "packet":
        phases = phase_spans(tracer, PHASE_BOUNDARIES,
                             nodes=("node0", "node1"), select="first")
    else:
        phases = []
    name = get_spec(provider).name
    params = {"size": size, "seed": seed, "benchmark": "profile_pingpong"}
    # only faulted/non-default runs grow extra keys, so default metadata
    # (and every golden fixture derived from it) keeps its exact bytes
    if loss_rate:
        params["loss_rate"] = loss_rate
    if reliability is not None:
        params["reliability"] = reliability.value
    if fidelity != "packet":
        params["fidelity"] = fidelity
    meta = run_metadata(name, params)
    return TransferProfile(
        provider=name, size=size, seed=seed, rtt_us=out["rtt"],
        events=list(tracer.events), spans=rec.spans + phases,
        registry=registry, meta=meta,
    )


# -- multi-provider export (the CLI fans profile_transfer over --providers)

def combined_trace_json(profiles: "list[TransferProfile]") -> str:
    """One Chrome-trace document covering every profiled provider.

    With several providers the node names are prefixed (``clan:node0``)
    so each provider's nodes render as separate Perfetto processes.
    """
    events: list[TraceEvent] = []
    spans: list[Span] = []
    multi = len(profiles) > 1
    for p in profiles:
        prefix = f"{p.provider}:" if multi else ""
        events.extend(replace(ev, node=prefix + ev.node) for ev in p.events)
        spans.extend(replace(sp, node=prefix + sp.node) for sp in p.spans)
    meta = {
        "package": "repro",
        "version": profiles[0].meta["version"] if profiles else "",
        "providers": [p.provider for p in profiles],
        "params": profiles[0].meta["params"] if profiles else {},
    }
    return dumps_trace(events, spans, meta=meta)


def combined_metrics_json(profiles: "list[TransferProfile]") -> str:
    """One metrics document keyed by provider (deterministic bytes)."""
    doc = {
        "meta": {
            "package": "repro",
            "version": profiles[0].meta["version"] if profiles else "",
            "params": profiles[0].meta["params"] if profiles else {},
        },
        "providers": {p.provider: p.registry.snapshot() for p in profiles},
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
