"""Harvest a finished testbed's counters into a metrics registry.

The hardware and provider models already keep cheap always-on counters
(TLB hits, DMA bytes, wire packets, work-queue totals, ...).  This
module walks a :class:`~repro.providers.registry.Testbed` after a run
and publishes them under canonical dotted names, so exporting metrics
costs nothing during simulation — the registry is materialised once,
at the end.

Naming scheme (sorted output, stable across runs)::

    sim.events_run                    kernel-level totals
    cpu.<node>.<actor>.utime_us       per-actor rusage split
    nic.<node>.dma.bytes              NIC subsystems
    via.<node>.send.completed         VIA descriptor/CQ path
    wire.<node>.up.packets            one channel per direction
    wire.switch.forwarded

Everything is read-only: harvesting twice into two registries yields
identical snapshots.
"""

from __future__ import annotations

from .metrics import MetricsRegistry

__all__ = ["harvest_testbed", "harvest_into", "harvest_shard_into"]


def harvest_testbed(tb) -> MetricsRegistry:
    """Build a fresh registry from a (finished) testbed."""
    registry = MetricsRegistry()
    harvest_into(registry, tb)
    return registry


def harvest_into(registry: MetricsRegistry, tb) -> MetricsRegistry:
    """Publish a testbed's model counters into ``registry``."""
    sim = tb.sim
    registry.set_gauge("sim.now_us", sim.now)
    registry.inc("sim.events_run", sim.events_run)
    registry.inc("sim.ctx_switches", sim.ctx_switches)
    # fast-forward accounting, only-when-nonzero: packet-mode harvests
    # stay byte-identical to the pre-fast-forward goldens
    if sim.ff_bursts:
        registry.set_gauge("sim.ff_time_us", sim.ff_time)
        registry.inc("sim.ff_events_skipped", sim.ff_events_skipped)
        registry.inc("sim.ff_bursts", sim.ff_bursts)

    for name in tb.node_names:
        node = tb.fabric.node(name)
        _harvest_cpu(registry, name, node.cpu)
        _harvest_nic(registry, name, node.nic)

    for name, provider in sorted(tb.providers.items()):
        _harvest_via(registry, name, provider)

    injector = getattr(tb, "injector", None)
    if injector is not None and injector.armed:
        for kind, fired in sorted(injector.counters.items()):
            registry.inc(f"faults.{kind}.injected", fired)

    switch = getattr(tb.fabric, "switch", None)
    if switch is not None:
        registry.inc("wire.switch.forwarded", switch.forwarded)
        for name in tb.node_names:
            node = tb.fabric.node(name)
            port = node.nic.port
            if port is not None:
                _harvest_channel(registry, f"wire.{name}.up",
                                 port.out_channel)
            down = switch._downlinks.get(name)
            if down is not None:
                _harvest_channel(registry, f"wire.{name}.down", down)
            port = switch._ports.get(name)
            if port is not None:
                _harvest_port(registry, f"wire.{name}.port", port)
    return registry


def harvest_shard_into(registry: MetricsRegistry, tb, owned,
                       shard_index: int, counters: dict) -> MetricsRegistry:
    """Publish one shard's slice of the testbed counters.

    The owned-node restriction makes the per-shard registries disjoint
    on hardware names, so the merge
    (:func:`repro.shard.merge.merge_registries`) can treat any other
    collision as an ownership bug; the deliberately shared names —
    ``wire.switch.forwarded`` and the ``faults.*`` totals — partition
    by where the traffic ran and merge additively.  Kernel ``sim.*``
    totals are omitted entirely: they describe one shard's event loop,
    not the simulated hardware, and differ across shard counts by
    construction.  ``counters`` lands under ``shard.<i>.*`` (sync
    stalls, records exchanged, horizon advances).
    """
    owned = frozenset(owned)
    for name in tb.node_names:
        if name not in owned:
            continue
        node = tb.fabric.node(name)
        _harvest_cpu(registry, name, node.cpu)
        _harvest_nic(registry, name, node.nic)

    for name, provider in sorted(tb.providers.items()):
        if name in owned:
            _harvest_via(registry, name, provider)

    injector = getattr(tb, "injector", None)
    if injector is not None and injector.armed:
        for kind, fired in sorted(injector.counters.items()):
            registry.inc(f"faults.{kind}.injected", fired)

    switch = getattr(tb.fabric, "switch", None)
    if switch is not None:
        # every shard contributes the forwards it replayed (additive)
        registry.inc("wire.switch.forwarded", switch.forwarded)
        for name in tb.node_names:
            if name not in owned:
                continue
            node = tb.fabric.node(name)
            port = node.nic.port
            if port is not None:
                _harvest_channel(registry, f"wire.{name}.up",
                                 port.out_channel)
            down = switch._downlinks.get(name)
            if down is not None:
                _harvest_channel(registry, f"wire.{name}.down", down)
            port = switch._ports.get(name)
            if port is not None:
                _harvest_port(registry, f"wire.{name}.port", port)

    prefix = f"shard.{shard_index}"
    for key in sorted(counters):
        registry.inc(f"{prefix}.{key}", counters[key])
    return registry


def _harvest_cpu(registry: MetricsRegistry, node: str, cpu) -> None:
    for actor_name, actor in sorted(cpu._actors.items()):
        prefix = f"cpu.{node}.{actor_name}"
        registry.set_gauge(f"{prefix}.utime_us", actor.rusage.utime)
        registry.set_gauge(f"{prefix}.stime_us", actor.rusage.stime)
        registry.set_gauge(f"{prefix}.poll_us", actor.poll_time)


def _harvest_nic(registry: MetricsRegistry, node: str, nic) -> None:
    prefix = f"nic.{node}"
    registry.inc(f"{prefix}.tx_packets", nic.tx_packets)
    registry.inc(f"{prefix}.rx_packets", nic.rx_packets)
    registry.inc(f"{prefix}.doorbells", nic.doorbells)
    registry.inc(f"{prefix}.dma.transfers", nic.dma.transfers)
    registry.inc(f"{prefix}.dma.bytes", nic.dma.bytes_moved)
    registry.inc(f"{prefix}.tlb.hits", nic.tlb.hits)
    registry.inc(f"{prefix}.tlb.misses", nic.tlb.misses)
    registry.inc(f"{prefix}.tlb.evictions", nic.tlb.evictions)
    registry.set_gauge(f"{prefix}.tlb.hit_rate", nic.tlb.hit_rate)
    # fault-path counters: published only when they fired so that
    # fault-free harvests stay byte-identical to the pre-fault goldens
    if nic.doorbells_dropped:
        registry.inc(f"{prefix}.doorbells_dropped", nic.doorbells_dropped)
    if nic.rx_crc_drops:
        registry.inc(f"{prefix}.rx_crc_drops", nic.rx_crc_drops)


def _harvest_via(registry: MetricsRegistry, node: str, provider) -> None:
    prefix = f"via.{node}"
    engine = provider.engine
    registry.inc(f"{prefix}.messages_sent", engine.messages_sent)
    registry.inc(f"{prefix}.messages_received", engine.messages_received)
    registry.inc(f"{prefix}.retransmissions", engine.retransmissions)
    registry.inc(f"{prefix}.naks_sent", engine.naks_sent)
    registry.inc(f"{prefix}.drops", engine.drops)
    # recovery-path counters, only-when-nonzero (see _harvest_nic)
    if engine.dma_aborts:
        registry.inc(f"{prefix}.dma_aborts", engine.dma_aborts)
    if provider.conn_retransmissions:
        registry.inc(f"{prefix}.conn_retransmissions",
                     provider.conn_retransmissions)
    if provider.vi_errors:
        registry.inc(f"{prefix}.vi_errors", provider.vi_errors)
    if provider.recoveries:
        registry.inc(f"{prefix}.recoveries", provider.recoveries)
    if provider.conn_rejects:
        registry.inc(f"{prefix}.conn_rejects", provider.conn_rejects)
    posted = {"send": 0, "recv": 0}
    completed = {"send": 0, "recv": 0}
    for vi in provider.vis.values():
        for wq in (vi.send_q, vi.recv_q):
            posted[wq.kind] += wq.total_posted
            completed[wq.kind] += wq.total_completed
    for kind in ("send", "recv"):
        registry.inc(f"{prefix}.{kind}.posted", posted[kind])
        registry.inc(f"{prefix}.{kind}.completed", completed[kind])
    notifications = 0
    max_depth = 0
    for cq in provider.cqs:
        notifications += cq.total_notifications
        if cq.max_depth > max_depth:
            max_depth = cq.max_depth
    registry.inc(f"{prefix}.cq.notifications", notifications)
    registry.set_gauge(f"{prefix}.cq.max_depth", max_depth)


def _harvest_port(registry: MetricsRegistry, prefix: str, port) -> None:
    # contention counters, only-when-nonzero (see _harvest_nic): an
    # uncontended run's snapshot stays byte-identical to the pre-port era
    if port.contended:
        registry.inc(f"{prefix}.contended", port.contended)
        registry.set_gauge(f"{prefix}.max_backlog_us", port.max_backlog_us)
    if port.backpressured:
        registry.inc(f"{prefix}.backpressured", port.backpressured)
    if port.drops:
        registry.inc(f"{prefix}.drops", port.drops)


def _harvest_channel(registry: MetricsRegistry, prefix: str, channel) -> None:
    registry.inc(f"{prefix}.packets", channel.sent_packets)
    registry.inc(f"{prefix}.bytes", channel.sent_bytes)
    registry.inc(f"{prefix}.drops", channel.dropped_packets)
    registry.inc(f"{prefix}.delivered", channel.delivered_packets)
    if channel.dup_packets:
        registry.inc(f"{prefix}.duplicated", channel.dup_packets)
