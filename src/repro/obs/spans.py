"""Profiling spans over simulated time.

A :class:`Span` is a named interval ``[start, end]`` on the simulated
clock — the structured generalisation of the latency-breakdown phases
in :mod:`repro.models.breakdown`.  Spans come from two sources:

- **live recording**: a :class:`SpanRecorder` wraps sections of a
  simulation process (``with rec.span("setup", node="node0"): ...``,
  or explicit :meth:`SpanRecorder.begin`/``end`` for intervals that
  cross generator boundaries);
- **trace reconstruction**: :func:`phase_spans` telescopes a recorded
  :class:`~repro.sim.trace.Tracer` timeline into phase spans using
  declarative boundary definitions — exactly how the breakdown model
  derives its phases.

Both produce plain frozen dataclasses that the Perfetto exporter
(:mod:`repro.obs.perfetto`) serialises as Chrome-trace "complete"
events.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..sim import Simulator
from ..sim.trace import Tracer

__all__ = ["Span", "SpanRecorder", "PhaseBoundary", "phase_spans"]


@dataclass(frozen=True)
class Span:
    """One closed interval of simulated time."""

    name: str
    start: float
    end: float
    category: str = "span"
    node: str = ""
    args: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"span {self.name!r}: end {self.end} before start {self.start}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanRecorder:
    """Collects spans from a running simulation.

    Reading ``sim.now`` at enter/exit is the only interaction with the
    kernel, so recording never perturbs event ordering.  Nested spans
    are allowed and simply produce overlapping intervals (Perfetto
    renders them as a flame stack per track).
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.spans: list[Span] = []
        self._open: dict[tuple[str, str], float] = {}

    def __len__(self) -> int:
        return len(self.spans)

    @contextmanager
    def span(self, name: str, category: str = "span", node: str = "",
             **args):
        """Context manager: record the enclosed section as one span."""
        start = self.sim.now
        try:
            yield self
        finally:
            self.spans.append(Span(name, start, self.sim.now,
                                   category=category, node=node, args=args))

    def begin(self, name: str, node: str = "") -> None:
        """Open a span by key; pair with :meth:`end`."""
        key = (name, node)
        if key in self._open:
            raise ValueError(f"span {name!r} on {node!r} is already open")
        self._open[key] = self.sim.now

    def end(self, name: str, node: str = "", category: str = "span",
            **args) -> Span:
        key = (name, node)
        try:
            start = self._open.pop(key)
        except KeyError:
            raise ValueError(f"span {name!r} on {node!r} was never opened") from None
        span = Span(name, start, self.sim.now, category=category, node=node,
                    args=args)
        self.spans.append(span)
        return span

    def select(self, name: str | None = None,
               node: str | None = None) -> list[Span]:
        return [s for s in self.spans
                if (name is None or s.name == name)
                and (node is None or s.node == node)]


@dataclass(frozen=True)
class PhaseBoundary:
    """Declarative phase definition over a traced timeline.

    Each marker is ``(category, label, node_role)`` where ``node_role``
    indexes into the node list handed to :func:`phase_spans` (0 =
    sender, 1 = receiver), plus optional exact-match ``info`` filters.
    Whether the first or the last matching event anchors the phase is a
    property of the *run*, not the boundary: warmed-up breakdown runs
    want the last occurrence, a cold canonical transfer wants the
    first — pick with the ``select`` argument of :func:`phase_spans`.
    """

    name: str
    start: tuple[str, str, int]
    end: tuple[str, str, int]
    start_info: dict = field(default_factory=dict)
    end_info: dict = field(default_factory=dict)


def _mark(tracer: Tracer, marker: tuple[str, str, int], nodes: Sequence[str],
          info: dict, select: str) -> float:
    category, label, role = marker
    pick = tracer.last if select == "last" else tracer.first
    ev = pick(category=category, label=label, node=nodes[role], **info)
    if ev is None:
        raise RuntimeError(
            f"missing trace event: {category}/{label} on {nodes[role]} {info}"
        )
    return ev.t


def phase_spans(tracer: Tracer, boundaries: Iterable[PhaseBoundary],
                nodes: Sequence[str] = ("node0", "node1"),
                category: str = "phase", select: str = "last") -> list[Span]:
    """Telescope a traced timeline into phase spans.

    The returned spans are contiguous whenever consecutive boundaries
    chain (``phase[i].end == phase[i+1].start``), which is how the
    breakdown model guarantees its phases sum to the observed latency.
    ``select`` picks which matching event anchors each marker:
    ``"last"`` for runs whose warm-up traffic already emitted the same
    labels, ``"first"`` for a cold single transfer.
    """
    if select not in ("first", "last"):
        raise ValueError(f"select must be 'first' or 'last', got {select!r}")
    spans = []
    for b in boundaries:
        t0 = _mark(tracer, b.start, nodes, b.start_info, select)
        t1 = _mark(tracer, b.end, nodes, b.end_info, select)
        spans.append(Span(b.name, t0, t1, category=category,
                          node=nodes[b.start[2]]))
    return spans
