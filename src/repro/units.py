"""Unit conventions and helpers.

The whole package uses a single convention:

- **time** — microseconds (``float``), matching the paper's reported
  numbers (Table 1 and all figures are in µs).
- **size** — bytes (``int``).
- **bandwidth** — bytes per microsecond, i.e. MB/s (1 byte/µs = 1 MB/s
  with MB = 10**6 B, the convention the paper's figures use).

Helpers here convert to/from human-friendly units and generate the
message-size sweeps the paper's figures use on their x-axes.
"""

from __future__ import annotations

__all__ = [
    "US_PER_MS",
    "US_PER_S",
    "KiB",
    "MiB",
    "mbps_to_bytes_per_us",
    "bytes_per_us_to_mbps",
    "fmt_time_us",
    "fmt_size",
    "paper_size_sweep",
    "pow2_sweep",
]

US_PER_MS = 1_000.0
US_PER_S = 1_000_000.0
KiB = 1024
MiB = 1024 * 1024


def mbps_to_bytes_per_us(megabytes_per_second: float) -> float:
    """MB/s (decimal megabytes) -> bytes/µs (numerically identical)."""
    return float(megabytes_per_second)


def bytes_per_us_to_mbps(bytes_per_us: float) -> float:
    """bytes/µs -> MB/s (decimal megabytes; numerically identical)."""
    return float(bytes_per_us)


def fmt_time_us(us: float) -> str:
    """Render a µs quantity with a sensible unit."""
    if us >= US_PER_S:
        return f"{us / US_PER_S:.3f} s"
    if us >= US_PER_MS:
        return f"{us / US_PER_MS:.3f} ms"
    return f"{us:.2f} us"


def fmt_size(nbytes: int) -> str:
    if nbytes >= MiB:
        return f"{nbytes / MiB:g} MiB"
    if nbytes >= KiB:
        return f"{nbytes / KiB:g} KiB"
    return f"{nbytes} B"


def paper_size_sweep() -> list[int]:
    """The x-axis the paper's figures use: 4 B ... 28672 B.

    Figures 1, 2 and 7 tick at 4, 16, 64, 256, 1024, 4096, 12288,
    20480, 28672 bytes (powers of four up to a page, then 8 KiB steps).
    """
    return [4, 16, 64, 256, 1024, 4096, 12288, 20480, 28672]


def pow2_sweep(lo: int, hi: int) -> list[int]:
    """Powers of two from ``lo`` to ``hi`` inclusive."""
    if lo <= 0 or hi < lo:
        raise ValueError(f"bad sweep bounds: {lo}..{hi}")
    out = []
    size = lo
    while size <= hi:
        out.append(size)
        size *= 2
    return out
