"""User-defined providers: load a ProviderSpec from a JSON file.

The design-space engine is fully parameterised; this module makes that
a user feature — describe a hypothetical VIA implementation in JSON and
run the whole suite against it:

    vibe run base_latency --provider-spec my_design.json

JSON schema (all cost/network fields optional — they default to the
``base`` provider's values)::

    {
      "name": "my-design",
      "base": "bvia",                 // provider to inherit from
      "choices": {                     // DesignChoices overrides
        "translation_agent": "nic",   // enum values by name
        "table_location": "nic_memory",
        "doorbell": "mmio",
        "data_path": "zero_copy",
        "dispatch": "direct",
        "unexpected": "retry",
        "cq_in_hardware": true,
        "supports_rdma_read": true,
        "default_reliability": "reliable_delivery",
        "nic_tlb_entries": 1024
      },
      "costs": { "vi_create": 5.0, "tlb_miss": 2.0 },   // CostModel fields
      "network": { "bandwidth": 250.0, "mtu": 2048 }    // NetworkParams fields
    }
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import fields, replace

from ..via.constants import Reliability
from .costs import (
    DataPath,
    DesignChoices,
    DispatchKind,
    DoorbellKind,
    TableLocation,
    TranslationAgent,
    UnexpectedPolicy,
)
from .registry import ProviderSpec, get_spec

__all__ = ["load_spec", "spec_to_dict"]

_ENUMS = {
    "translation_agent": TranslationAgent,
    "table_location": TableLocation,
    "doorbell": DoorbellKind,
    "data_path": DataPath,
    "dispatch": DispatchKind,
    "unexpected": UnexpectedPolicy,
    "default_reliability": Reliability,
}


def _parse_choices(base: DesignChoices, overrides: dict) -> DesignChoices:
    kwargs = {}
    valid = {f.name for f in fields(DesignChoices)}
    for key, value in overrides.items():
        if key not in valid:
            raise ValueError(f"unknown DesignChoices field {key!r}; "
                             f"valid: {sorted(valid)}")
        if key in _ENUMS:
            enum_cls = _ENUMS[key]
            try:
                value = enum_cls(value)
            except ValueError:
                names = [e.value for e in enum_cls]
                raise ValueError(
                    f"{key}={value!r} is not one of {names}"
                ) from None
        kwargs[key] = value
    return replace(base, **kwargs)


def _parse_plain(base, overrides: dict, what: str):
    valid = {f.name for f in fields(type(base))}
    unknown = set(overrides) - valid
    if unknown:
        raise ValueError(f"unknown {what} field(s) {sorted(unknown)}; "
                         f"valid: {sorted(valid)}")
    return replace(base, **overrides)


def load_spec(path: "str | pathlib.Path") -> ProviderSpec:
    """Build a ProviderSpec from a JSON description file."""
    data = json.loads(pathlib.Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError("provider spec file must contain a JSON object")
    base = get_spec(data.get("base", "clan"))
    name = data.get("name", f"custom-{base.name}")
    choices = _parse_choices(base.choices, data.get("choices", {}))
    costs = _parse_plain(base.costs, data.get("costs", {}), "CostModel")
    network = _parse_plain(base.network, data.get("network", {}),
                           "NetworkParams")
    host = _parse_plain(base.host, data.get("host", {}), "HostParams")
    return ProviderSpec(name=name, network=network, choices=choices,
                        costs=costs, host=host)


def spec_to_dict(spec: ProviderSpec) -> dict:
    """Serialise a spec back to the JSON shape (for saving variants)."""
    def plain(obj):
        out = {}
        for f in fields(type(obj)):
            value = getattr(obj, f.name)
            out[f.name] = value.value if hasattr(value, "value") else value
        return out

    return {
        "name": spec.name,
        "choices": plain(spec.choices),
        "costs": plain(spec.costs),
        "network": plain(spec.network),
        "host": plain(spec.host),
    }
