"""M-VIA 1.0 model: software VIA in the Linux kernel on Gigabit Ethernet.

M-VIA (NERSC's *Modular VIA*) emulates VIA entirely in the host
operating system on commodity NICs (here: a Packet Engines GNIC-II).
The architectural consequences the paper observes:

- **doorbells are kernel traps** — every post pays a syscall;
- the **data path is staged**: data is copied between user buffers and
  kernel DMA buffers on both sides, so long messages pay two host
  copies (this is why BVIA overtakes M-VIA beyond a few KB, §4.3.1);
- **translation happens on the host** inside the trap, so the latency
  is insensitive to buffer reuse (Fig. 5 control) and to the number of
  open VIs (Fig. 6 control);
- unexpected messages are absorbed by **kernel buffering**;
- receive processing is host kernel work per Ethernet frame, so CPU
  utilisation is the highest of the three for small messages (Fig. 4);
- connection setup goes through a kernel connection manager and is the
  most expensive of the three (Table 1: 6465 µs).
"""

from __future__ import annotations

from ..via.constants import Reliability
from .costs import (
    CostModel,
    DataPath,
    DesignChoices,
    DispatchKind,
    DoorbellKind,
    TableLocation,
    TranslationAgent,
    UnexpectedPolicy,
)

__all__ = ["MVIA_CHOICES", "MVIA_COSTS"]

MVIA_CHOICES = DesignChoices(
    translation_agent=TranslationAgent.HOST,
    table_location=TableLocation.HOST_MEMORY,
    doorbell=DoorbellKind.SYSCALL,
    data_path=DataPath.STAGED,
    dispatch=DispatchKind.DIRECT,       # kernel demultiplexes directly
    unexpected=UnexpectedPolicy.BUFFER,
    cq_in_hardware=False,
    supports_rdma_read=False,
    default_reliability=Reliability.UNRELIABLE,
    nic_tlb_entries=1,                  # NIC never translates
)

# Calibration data (µs unless noted): chosen so Table 1 / Figs. 1-4 land
# near the paper's M-VIA magnitudes.  Mechanisms are in engine.py.
MVIA_COSTS = CostModel(
    # Table 1
    vi_create=93.0,
    vi_destroy=0.19,
    cq_create=17.0,
    cq_destroy=8.44,
    conn_client=4200.0,
    conn_server=2250.0,
    conn_teardown_active=3.0,
    conn_teardown_passive=2.0,
    # Fig. 1 / Fig. 2
    reg_base=2.0,
    reg_per_page=4.7,
    dereg_base=2.0,
    dereg_per_page=0.0008,
    # host path
    post_cost=0.8,
    doorbell_cost=4.0,                  # trap into the kernel
    host_translation_per_page=0.3,
    reap_cost=0.3,
    recv_host_per_frag=5.0,             # per-frame kernel receive work
    blocking_wakeup=10.0,
    blocking_delay=2.0,
    # NIC engine (a dumb Ethernet NIC: the kernel did the heavy lifting)
    nic_dispatch_per_vi=0.0,
    nic_desc_fetch=1.5,
    nic_per_segment=0.4,
    nic_tx_per_frag=1.0,
    nic_rx_per_frag=2.0,
    tlb_hit=0.0,
    tlb_miss=0.0,
    completion_write=0.8,
    cq_notify=0.4,
    ack_tx=1.0,
    ack_rx=1.0,
    max_transfer_size=65536,
    max_segments=16,
)
