"""Berkeley VIA 2.2 model: firmware VIA on Myrinet (LANai 4.3).

Berkeley VIA puts the protocol on the LANai NIC processor, with
translation tables in *host* memory and a software translation cache on
the NIC.  The architectural consequences the paper observes:

- **zero-copy** DMA between user buffers and the wire, so BVIA beats
  M-VIA for long messages despite higher per-message overhead (§4.3.1);
- the **NIC performs translation with a host-resident table**, so the
  percentage of buffer reuse matters: cache misses cost a DMA fetch of
  the table entry across the PCI bus, and large messages span many
  pages (Fig. 5 — the paper's marquee result);
- the firmware **polls a data structure containing the send descriptors
  for all VIs**, so latency grows with the number of open VIs (Fig. 6);
- CQs are software on a slow 33 MHz embedded processor: creating one is
  expensive (Table 1: 206 µs) and each CQ deposit adds 2–5 µs (§4.3.3);
- connection setup is the cheapest of the three (no kernel manager, no
  hardware handshake: 496 µs).
"""

from __future__ import annotations

from ..via.constants import Reliability
from .costs import (
    CostModel,
    DataPath,
    DesignChoices,
    DispatchKind,
    DoorbellKind,
    TableLocation,
    TranslationAgent,
    UnexpectedPolicy,
)

__all__ = ["BVIA_CHOICES", "BVIA_COSTS"]

BVIA_CHOICES = DesignChoices(
    translation_agent=TranslationAgent.NIC,
    table_location=TableLocation.HOST_MEMORY,
    doorbell=DoorbellKind.MMIO,         # PIO store into LANai memory
    data_path=DataPath.ZERO_COPY,
    dispatch=DispatchKind.POLLED,       # firmware scans every open VI
    unexpected=UnexpectedPolicy.DROP,
    cq_in_hardware=False,
    supports_rdma_read=False,           # BVIA 2.2 had no RDMA read
    default_reliability=Reliability.UNRELIABLE,
    nic_tlb_entries=32,                 # small software cache on the LANai
)

# Calibration data (µs unless noted): chosen so Table 1 / Figs. 1-6 land
# near the paper's Berkeley VIA magnitudes.
BVIA_COSTS = CostModel(
    # Table 1
    vi_create=28.0,
    vi_destroy=0.19,
    cq_create=206.0,
    cq_destroy=35.0,
    conn_client=290.0,
    conn_server=200.0,
    conn_teardown_active=9.0,
    conn_teardown_passive=5.0,
    # Fig. 1 / Fig. 2 — expensive below ~20 KB (NIC table update via PIO)
    reg_base=18.0,
    reg_per_page=1.5,
    dereg_base=10.0,
    dereg_per_page=0.0006,
    # host path (user-space library; posts are cheap)
    post_cost=0.8,
    doorbell_cost=1.2,
    host_translation_per_page=0.0,
    reap_cost=0.4,
    recv_host_per_frag=0.0,
    blocking_wakeup=5.0,
    blocking_delay=13.0,
    # NIC engine — a 33 MHz LANai runs the whole protocol
    nic_dispatch_per_vi=2.0,            # the Fig. 6 mechanism
    nic_desc_fetch=6.0,
    nic_per_segment=1.2,
    nic_tx_per_frag=5.0,
    nic_rx_per_frag=8.0,
    tlb_hit=0.5,
    tlb_miss=8.0,                       # + a 32-byte DMA table fetch
    completion_write=2.5,
    cq_notify=3.0,                      # the §4.3.3 "2-5 us" overhead
    ack_tx=2.0,
    ack_rx=2.0,
    max_transfer_size=32768,
    max_segments=16,
)
