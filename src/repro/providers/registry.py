"""Provider registry and testbed construction.

A :class:`Testbed` is the unit every benchmark and example runs
against: a fresh simulator, a fabric with the provider's native network
preset, and one provider stack per node.  Everything is assembled from
a :class:`ProviderSpec`, so ablation studies can clone a spec and flip
a single design choice (see ``benchmarks/bench_ablation_design.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..hw.network import GIGANET, GIGE, MYRINET, Fabric, HostParams, NetworkParams
from ..sim import Simulator
from ..via.nameservice import NameService
from ..via.provider import NicHandle
from .base import SimulatedProvider
from .bvia import BVIA_CHOICES, BVIA_COSTS
from .clan import CLAN_CHOICES, CLAN_COSTS
from .costs import CostModel, DesignChoices
from .iba import IBA_1X, IBA_CHOICES, IBA_COSTS
from .mvia import MVIA_CHOICES, MVIA_COSTS

__all__ = ["ProviderSpec", "PROVIDERS", "Testbed", "get_spec"]


@dataclass(frozen=True)
class ProviderSpec:
    """Everything needed to stand up one VIA implementation."""

    name: str
    network: NetworkParams
    choices: DesignChoices
    costs: CostModel
    host: HostParams = field(default_factory=HostParams)

    def with_choices(self, **kwargs) -> "ProviderSpec":
        return replace(self, choices=replace(self.choices, **kwargs))

    def with_costs(self, **kwargs) -> "ProviderSpec":
        return replace(self, costs=replace(self.costs, **kwargs))

    def with_network(self, network: NetworkParams) -> "ProviderSpec":
        return replace(self, network=network)


PROVIDERS: dict[str, ProviderSpec] = {
    "mvia": ProviderSpec("mvia", GIGE, MVIA_CHOICES, MVIA_COSTS),
    "bvia": ProviderSpec("bvia", MYRINET, BVIA_CHOICES, BVIA_COSTS),
    "clan": ProviderSpec("clan", GIGANET, CLAN_CHOICES, CLAN_COSTS),
    # the paper's future-work target (§5): an InfiniBand-style stack
    "iba": ProviderSpec("iba", IBA_1X, IBA_CHOICES, IBA_COSTS),
}


def get_spec(name_or_spec: "str | ProviderSpec") -> ProviderSpec:
    if isinstance(name_or_spec, ProviderSpec):
        return name_or_spec
    try:
        return PROVIDERS[name_or_spec]
    except KeyError:
        raise KeyError(
            f"unknown provider {name_or_spec!r}; "
            f"known: {sorted(PROVIDERS)}"
        ) from None


class Testbed:
    """A fresh simulated cluster running one VIA implementation.

    >>> tb = Testbed("clan")
    >>> h0 = tb.open("node0", "client")
    >>> h1 = tb.open("node1", "server")

    Applications are simulation processes started with
    ``tb.spawn(generator)`` and driven by ``tb.run()``.
    """

    def __init__(
        self,
        provider: "str | ProviderSpec",
        node_names: tuple[str, ...] = ("node0", "node1"),
        seed: int = 0,
        loss_rate: float | None = None,
        mtu: int | None = None,
        leaf_groups: tuple[tuple[str, ...], ...] | None = None,
        uplink_bandwidth: float | None = None,
        check: bool = False,
        faults=None,
        loss_possible: bool | None = None,
        fidelity: str = "packet",
    ) -> None:
        spec = get_spec(provider)
        network = spec.network
        if loss_rate is not None:
            network = network.with_loss(loss_rate)
        if mtu is not None:
            network = network.with_mtu(mtu)
        if fidelity not in ("packet", "auto", "flow"):
            raise ValueError(
                f"fidelity must be packet/auto/flow, got {fidelity!r}")
        self.spec = spec
        self.sim = Simulator()
        self.sim.fidelity = fidelity
        if leaf_groups is not None:
            from ..hw.tiered import TieredFabric

            node_names = tuple(n for g in leaf_groups for n in g)
            self.fabric = TieredFabric(self.sim, network, leaf_groups,
                                       host=spec.host,
                                       uplink_bandwidth=uplink_bandwidth,
                                       seed=seed)
        else:
            self.fabric = Fabric(self.sim, network, node_names,
                                 host=spec.host, seed=seed)
        self.nameservice = NameService()
        self.providers: dict[str, SimulatedProvider] = {}
        effective_mtu = min(network.mtu, spec.costs.max_transfer_size)
        if loss_possible is None:
            # store-and-forward output ports tail-drop under contention,
            # which two nodes can never produce; larger clusters must arm
            # the recovery machinery or pass loss_possible=False to opt out
            loss_possible = (network.loss_rate > 0.0
                             or (network.store_and_forward
                                 and len(node_names) > 2))
        for name in node_names:
            self.providers[name] = SimulatedProvider(
                node=self.fabric.node(name),
                nameservice=self.nameservice,
                choices=spec.choices,
                costs=spec.costs,
                mtu=effective_mtu,
                loss_possible=loss_possible,
                name=spec.name,
            )
        #: conformance checker when requested (repro.check); None keeps
        #: every hook site on its zero-cost path
        self.checker = None
        if check:
            from ..check.invariants import attach_checker

            self.checker = attach_checker(self)
        #: fault injector when a FaultPlan is supplied (repro.faults);
        #: same discipline — None (or an empty plan) keeps every hook
        #: site on its zero-cost path
        self.injector = None
        if faults is not None:
            from ..faults.injector import attach_faults

            attach_faults(self, faults)

    # -- checkpoint/restore (repro.snap) ----------------------------------
    @classmethod
    def create(cls, provider: "str | ProviderSpec", **kwargs) -> "Testbed":
        """Warm-aware constructor: identical semantics to ``Testbed(...)``.

        With warm start enabled (``repro.snap.enable_warm_start``),
        eligible cells restore from a shared construction checkpoint
        instead of re-running construction — including the first cell,
        so every cell takes the same code path and a warm sweep's
        results are byte-identical to a cold one.  Ineligible cells
        (spec objects, armed faults) silently build cold.
        """
        from ..snap import warmcache

        if warmcache.warm_enabled():
            blob = warmcache.get_or_build(provider, kwargs)
            if blob is not None:
                return cls.from_checkpoint(blob)
        return cls(provider, **kwargs)

    def checkpoint(self) -> bytes:
        """Serialize this testbed at a quiescent point (state tier)."""
        from ..snap import snapshot_state

        return snapshot_state(self)

    @classmethod
    def from_checkpoint(cls, blob: bytes) -> "Testbed":
        """Rebuild a testbed captured by :meth:`checkpoint`."""
        from ..snap import restore_state

        return restore_state(blob)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def node_names(self) -> tuple[str, ...]:
        return self.fabric.node_names

    def provider(self, node_name: str) -> SimulatedProvider:
        return self.providers[node_name]

    def open(self, node_name: str, actor_name: str) -> NicHandle:
        """VipOpenNic on a node: the application's session handle."""
        return self.providers[node_name].open(actor_name)

    def spawn(self, generator, name: str | None = None):
        return self.sim.process(generator, name=name)

    def run(self, until=None):
        return self.sim.run(until)

    @property
    def now(self) -> float:
        return self.sim.now
