"""SimulatedProvider: host-side VIA operations over the NIC engine.

One instance per node.  All public operations are generators (timed);
they charge the calling application's CPU actor and drive the shared
:class:`~repro.providers.engine.NicEngine` for anything that happens on
the NIC or the wire.
"""

from __future__ import annotations

from typing import Any, Generator

from ..hw.memory import page_span
from ..hw.node import Node
from ..sim import Event
from ..via.connection import ConnectionManager, ConnRequest, backoff_schedule
from ..via.constants import (
    CONTROL_WIRE_BYTES,
    DescriptorOp,
    Reliability,
    ViState,
    WaitMode,
)
from ..via.cq import CompletionQueue
from ..via.descriptor import Descriptor
from ..via.errors import (
    VIP_CATASTROPHIC,
    AsyncError,
    VipConnectionError,
    VipErrorResource,
    VipInvalidParameter,
    VipNotSupported,
    VipStateError,
    VipTimeout,
)
from ..via.memory import MemoryHandle, MemoryRegistry
from ..via.nameservice import NameService
from ..via.provider import ViaProvider
from ..via.vi import VI, WorkQueue
from .costs import CostModel, DataPath, DesignChoices, DoorbellKind, TranslationAgent, TableLocation
from .engine import NicEngine

__all__ = ["SimulatedProvider"]

Op = Generator[Event, Any, Any]


# -- wire payloads for connection management --------------------------------

class _ConnReqPayload:
    __slots__ = ("conn_id", "client_node", "client_vi_id", "discriminator",
                 "reliability")

    def __init__(self, conn_id, client_node, client_vi_id, discriminator,
                 reliability):
        self.conn_id = conn_id
        self.client_node = client_node
        self.client_vi_id = client_vi_id
        self.discriminator = discriminator
        self.reliability = reliability


class _ConnAckPayload:
    __slots__ = ("conn_id", "server_node", "server_vi_id")

    def __init__(self, conn_id, server_node, server_vi_id):
        self.conn_id = conn_id
        self.server_node = server_node
        self.server_vi_id = server_vi_id


class _ConnRejPayload:
    __slots__ = ("conn_id", "reason")

    def __init__(self, conn_id, reason):
        self.conn_id = conn_id
        self.reason = reason


class _DisconnectPayload:
    __slots__ = ("dst_vi_id",)

    def __init__(self, dst_vi_id):
        self.dst_vi_id = dst_vi_id


class SimulatedProvider(ViaProvider):
    """A VIA provider parameterised by design choices + a cost model."""

    def __init__(
        self,
        node: Node,
        nameservice: NameService,
        choices: DesignChoices,
        costs: CostModel,
        mtu: int,
        loss_possible: bool = False,
        name: str = "sim",
    ) -> None:
        super().__init__(node, nameservice)
        self.name = name
        self.choices = choices
        self.costs = costs
        #: effective wire MTU (min of fabric MTU and provider policy)
        self.mtu = mtu
        self.loss_possible = loss_possible
        self.vis: dict[int, VI] = {}
        self.cqs: list[CompletionQueue] = []
        self.registry = MemoryRegistry(node.mem)
        self.connmgr = ConnectionManager(node.sim)
        node.nic.tlb.entries = choices.nic_tlb_entries
        self.engine = NicEngine(self)
        # -- fault/recovery bookkeeping ---------------------------------
        #: handshake control packets retransmitted (client + server side)
        self.conn_retransmissions = 0
        #: VIs that entered ERROR via an asynchronous transport failure
        self.vi_errors = 0
        #: successful vi_reset recoveries
        self.recoveries = 0
        #: dial attempts this side rejected (admission control)
        self.conn_rejects = 0
        #: asynchronous errors recorded (VipErrorCallback analog)
        self.async_errors: list[AsyncError] = []
        self._error_callbacks: list = []
        #: server side: conn_id -> the ack/reject payload we answered
        #: with, resent when a duplicate conn_req shows our reply lost
        self._conn_replies: dict = {}

    # -- introspection -----------------------------------------------------
    @property
    def open_vi_count(self) -> int:
        return len(self.vis)

    @property
    def max_transfer_size(self) -> int:
        return self.costs.max_transfer_size

    @property
    def supports_rdma_read(self) -> bool:
        return self.choices.supports_rdma_read

    @property
    def default_reliability(self) -> Reliability:
        return self.choices.default_reliability

    def query_nic(self):
        """VipQueryNic: static capabilities of this provider instance."""
        from ..via.provider import NicAttributes

        return NicAttributes(
            name=self.name,
            max_transfer_size=self.costs.max_transfer_size,
            max_segments=self.costs.max_segments,
            max_outstanding_descriptors=self.costs.max_outstanding,
            mtu=self.mtu,
            supports_rdma_write=True,
            supports_rdma_read=self.choices.supports_rdma_read,
            reliability_levels=tuple(Reliability),
            nic_translation_entries=self.choices.nic_tlb_entries,
        )

    # =====================================================================
    # VI lifecycle
    # =====================================================================

    def vi_create(self, handle, reliability=None, send_cq=None, recv_cq=None) -> Op:
        c = self.costs
        reliability = reliability or self.default_reliability
        yield from handle.actor.busy(c.vi_create, "sys")
        vi = VI(self.sim, self.node.name, reliability,
                max_transfer_size=c.max_transfer_size, ptag=handle.ptag)
        if send_cq is not None:
            send_cq._check_live()
            vi.send_q.cq = send_cq
            send_cq.attached += 1
        if recv_cq is not None:
            recv_cq._check_live()
            vi.recv_q.cq = recv_cq
            recv_cq.attached += 1
        self.vis[vi.vi_id] = vi
        return vi

    def vi_destroy(self, handle, vi: VI) -> Op:
        vi.require_state(ViState.IDLE, ViState.DISCONNECTED, ViState.ERROR)
        for wq in (vi.send_q, vi.recv_q):
            if wq.posted or wq.completed:
                raise VipStateError(
                    f"VI {vi.vi_id}: {wq.kind} queue not empty at destroy "
                    f"({len(wq.posted)} posted, {len(wq.completed)} unreaped)"
                )
        yield from handle.actor.busy(self.costs.vi_destroy, "sys")
        for wq in (vi.send_q, vi.recv_q):
            if wq.cq is not None:
                wq.cq.attached -= 1
                wq.cq = None
        vi.to_state(ViState.DESTROYED)
        del self.vis[vi.vi_id]

    # =====================================================================
    # memory
    # =====================================================================

    def register_mem(self, handle, address, length,
                     enable_rdma_write=True, enable_rdma_read=False) -> Op:
        c = self.costs
        npages = len(page_span(address, length, self.node.mem.page_size))
        yield from handle.actor.busy(c.reg_base + c.reg_per_page * npages, "sys")
        mh = self.registry.register(address, length, handle.ptag,
                                    enable_rdma_write, enable_rdma_read)
        if self.choices.table_location is TableLocation.NIC_MEMORY:
            # translations installed in NIC memory at registration time
            table = self.node.mem.page_table
            for vpage in mh.pages:
                self.node.nic.tlb.insert(vpage, table.translate(vpage))
        return mh

    def deregister_mem(self, handle, mh: MemoryHandle) -> Op:
        c = self.costs
        yield from handle.actor.busy(
            c.dereg_base + c.dereg_per_page * mh.page_count, "sys"
        )
        chk = self.sim.checker
        if chk is not None:
            chk.on_deregister(self, mh)
        self.registry.deregister(mh)
        # stale translations must never survive deregistration
        for vpage in mh.pages:
            self.node.nic.tlb.invalidate(vpage)

    # =====================================================================
    # completion queues
    # =====================================================================

    def cq_create(self, handle, depth: int = 1024) -> Op:
        yield from handle.actor.busy(self.costs.cq_create, "sys")
        cq = CompletionQueue(self.sim, depth)
        self.cqs.append(cq)
        return cq

    def cq_destroy(self, handle, cq: CompletionQueue) -> Op:
        yield from handle.actor.busy(self.costs.cq_destroy, "sys")
        cq.destroy()

    # =====================================================================
    # connections
    # =====================================================================

    def _control_tx(self, dst_node: str, payload) -> Op:
        from ..hw.link import Packet

        pkt = Packet(src=self.node.name, dst=dst_node, kind="via-ctl",
                     size=CONTROL_WIRE_BYTES, payload=payload)
        yield from self.node.nic.transmit(pkt)

    @property
    def _recovery_armed(self) -> bool:
        """Packets can be lost: run the retransmission machinery."""
        if self.loss_possible:
            return True
        faults = self.sim.faults
        return faults is not None and faults.affects_delivery

    def connect_request(self, handle, vi: VI, remote_host: str,
                        discriminator: int, timeout: float | None = None) -> Op:
        vi.require_state(ViState.IDLE)
        c = self.costs
        yield from handle.actor.busy(c.conn_client, "sys")
        remote_node = self.nameservice.resolve(remote_host)
        conn_id = self.connmgr.new_request_id()
        ev = self.connmgr.track(conn_id)
        vi.to_state(ViState.CONNECT_PENDING)
        payload = _ConnReqPayload(conn_id, self.node.name, vi.vi_id,
                                  discriminator, vi.reliability)
        try:
            if self._recovery_armed:
                result = yield from self._connect_with_retx(
                    ev, remote_node, payload, timeout
                )
            else:
                yield from self._control_tx(remote_node, payload)
                result = yield from self._wait_event(ev, timeout)
        except (VipConnectionError, VipTimeout):
            self.connmgr.forget(conn_id)
            vi.to_state(ViState.IDLE)
            raise
        server_node, server_vi_id = result
        vi.peer = (server_node, server_vi_id)
        vi.to_state(ViState.CONNECTED)
        return vi

    def _connect_with_retx(self, ev: Event, remote_node: str, payload,
                           timeout: float | None) -> Op:
        """Dial with deterministic exponential backoff.

        Attempt k waits ``min(conn_rto * 2**k, conn_backoff_cap)`` µs for
        the server's answer before retransmitting the conn_req; a
        caller-supplied ``timeout`` additionally caps the whole exchange.  A rejection fails ``ev``
        and raises VipConnectionError out of the yield.
        """
        c = self.costs
        deadline = None if timeout is None else self.sim.now + timeout
        waits = backoff_schedule(c.conn_rto, c.conn_max_retries,
                                 cap=c.conn_backoff_cap)
        for attempt, wait in enumerate(waits):
            if attempt:
                self.conn_retransmissions += 1
                self.sim.trace("via", "conn_retx", self.node.name,
                               conn=payload.conn_id, attempt=attempt)
            yield from self._control_tx(remote_node, payload)
            if deadline is not None:
                wait = min(wait, deadline - self.sim.now)
                if wait <= 0:
                    raise VipTimeout(f"no response within {timeout} us")
            yield self.sim.any_of([ev, self.sim.timeout(wait)])
            if ev.triggered and ev.ok:
                return ev.value
            if deadline is not None and self.sim.now >= deadline:
                raise VipTimeout(f"no response within {timeout} us")
        raise VipConnectionError(
            f"no response from {remote_node} after {len(waits)} attempts"
        )

    def connect_wait(self, handle, discriminator: int,
                     timeout: float | None = None) -> Op:
        ev = self.connmgr.wait_for(discriminator)
        request = yield from self._wait_event(ev, timeout)
        return request

    def connect_accept(self, handle, request: ConnRequest, vi: VI) -> Op:
        vi.require_state(ViState.IDLE)
        if vi.reliability is not request.reliability:
            rej = _ConnRejPayload(request.conn_id, "reliability mismatch")
            self._conn_replies[request.conn_id] = rej
            yield from self._control_tx(request.client_node, rej)
            raise VipConnectionError(
                f"reliability mismatch: client wants "
                f"{request.reliability.value}, VI has {vi.reliability.value}"
            )
        yield from handle.actor.busy(self.costs.conn_server, "sys")
        vi.peer = (request.client_node, request.client_vi_id)
        vi.to_state(ViState.CONNECTED)
        ack = _ConnAckPayload(request.conn_id, self.node.name, vi.vi_id)
        self._conn_replies[request.conn_id] = ack
        yield from self._control_tx(request.client_node, ack)
        return vi

    def connect_reject(self, handle, request: ConnRequest) -> Op:
        self.conn_rejects += 1
        rej = _ConnRejPayload(request.conn_id, "rejected by peer")
        self._conn_replies[request.conn_id] = rej
        yield from self._control_tx(request.client_node, rej)

    def disconnect(self, handle, vi: VI) -> Op:
        vi.require_state(ViState.CONNECTED)
        c = self.costs
        yield from handle.actor.busy(c.conn_teardown_active, "sys")
        peer = vi.peer
        vi.to_state(ViState.DISCONNECTED)
        vi.send_q.flush()
        vi.recv_q.flush()
        if peer is not None:
            yield from self._control_tx(peer[0], _DisconnectPayload(peer[1]))

    # -- error recovery ------------------------------------------------------
    def vi_reset(self, handle, vi: VI) -> Op:
        """VipErrorReset analog: recover an ERROR/DISCONNECTED VI.

        Purges the engine's per-VI protocol state (un-acked messages,
        kernel buffers, duplicate-skip cursors) so the endpoint restarts
        with a clean sequence space, then returns it to IDLE.  Any
        unreaped completions are drained as part of the reset; the
        application reconnects and reposts afterwards — the full VIPL
        catastrophic-error recovery sequence.
        """
        yield from handle.actor.busy(self.costs.error_recovery, "sys")
        for key in [k for k in self.engine._unacked if k[0] == vi.vi_id]:
            self.engine._unacked[key].acked = True  # silence its timer
            del self.engine._unacked[key]
        self.engine._buffered.pop(vi.vi_id, None)
        self.engine._rdma_skip.pop(vi.vi_id, None)
        vi.reset()
        self.recoveries += 1
        self.sim.trace("via", "vi_reset", self.node.name, vi=vi.vi_id)
        return vi

    def register_error_callback(self, callback) -> None:
        """VipErrorCallback analog: invoked with each AsyncError."""
        self._error_callbacks.append(callback)

    def post_async_error(self, vi: VI, code: str = VIP_CATASTROPHIC,
                         detail: str = "") -> None:
        """Record an asynchronous error and fire registered callbacks
        (called by the engine when a VI enters ERROR)."""
        err = AsyncError(code=code, node=self.node.name, vi_id=vi.vi_id,
                         time_us=self.sim.now, detail=detail)
        self.vi_errors += 1
        self.async_errors.append(err)
        self.sim.trace("via", "async_error", self.node.name,
                       vi=vi.vi_id, code=code)
        for cb in list(self._error_callbacks):
            cb(err)

    def handle_control_packet(self, payload) -> None:
        """Engine callback for connection-management wire traffic."""
        if isinstance(payload, _ConnReqPayload):
            reply = self._conn_replies.get(payload.conn_id)
            if reply is not None:
                # duplicate conn_req: our answer was evidently lost
                self.conn_retransmissions += 1
                self.sim.trace("via", "conn_reply_retx", self.node.name,
                               conn=payload.conn_id)
                self.sim.process(
                    self._control_tx(payload.client_node, reply),
                    name=f"conn-reack-{payload.conn_id}",
                )
            elif not self.connmgr.seen(payload.conn_id):
                self.connmgr.deliver(ConnRequest(
                    conn_id=payload.conn_id,
                    client_node=payload.client_node,
                    client_vi_id=payload.client_vi_id,
                    discriminator=payload.discriminator,
                    reliability=payload.reliability,
                ))
            # else: duplicate of a request still parked or mid-accept
        elif isinstance(payload, _ConnAckPayload):
            self.connmgr.resolve(payload.conn_id, payload.server_node,
                                 payload.server_vi_id)
        elif isinstance(payload, _ConnRejPayload):
            self.connmgr.reject(payload.conn_id, payload.reason)
        elif isinstance(payload, _DisconnectPayload):
            vi = self.vis.get(payload.dst_vi_id)
            if vi is not None and vi.state is ViState.CONNECTED:
                # passive teardown
                cost = self.costs.conn_teardown_passive
                vi.to_state(ViState.DISCONNECTED)
                vi.send_q.flush()
                vi.recv_q.flush()
                if cost:
                    self.sim.process(self._charge_passive(cost),
                                     name="disc-passive")
        else:  # pragma: no cover - defensive
            raise VipInvalidParameter(f"unknown control payload {payload!r}")

    def _charge_passive(self, cost: float) -> Op:
        yield self.sim.timeout(cost)

    def notify_buffered(self, vi: VI) -> None:
        """Engine callback: a kernel-buffered message became available."""
        self.sim.process(self.engine.deliver_buffered(vi), name="deliver-buf")

    # =====================================================================
    # data transfer
    # =====================================================================

    def _validate_post(self, vi: VI, desc: Descriptor, *ops: DescriptorOp) -> None:
        if desc.op not in ops:
            raise VipInvalidParameter(
                f"cannot post a {desc.op.value} descriptor here"
            )
        desc.validate(self.costs.max_segments, self.costs.max_transfer_size)
        for seg in desc.segments:
            self.registry.check_local(seg.address, seg.length, seg.handle,
                                      vi.ptag)

    def post_send(self, handle, vi: VI, desc: Descriptor) -> Op:
        vi.require_state(ViState.CONNECTED)
        self._validate_post(vi, desc, DescriptorOp.SEND,
                            DescriptorOp.RDMA_WRITE, DescriptorOp.RDMA_READ)
        if desc.op is DescriptorOp.RDMA_READ and not self.supports_rdma_read:
            raise VipNotSupported(f"{self.name} does not implement RDMA read")
        if vi.send_q.outstanding >= self.costs.max_outstanding:
            raise VipErrorResource(
                f"send queue of VI {vi.vi_id} is full "
                f"({self.costs.max_outstanding})"
            )
        c = self.costs
        self.sim.trace("host", "post_send", self.node.name,
                       vi=vi.vi_id, desc=desc.desc_id,
                       nbytes=desc.total_length)
        yield from handle.actor.busy(c.post_cost, "user")
        db_kind = "sys" if self.choices.doorbell is DoorbellKind.SYSCALL else "user"
        yield from handle.actor.busy(c.doorbell_cost, db_kind)
        db_delay = self.node.nic.ring_doorbell()
        self.sim.trace("host", "doorbell", self.node.name,
                       vi=vi.vi_id, desc=desc.desc_id)
        if self.choices.data_path is DataPath.STAGED:
            # software VIA: the kernel copies to a staging buffer and
            # translates on the host, all inside the doorbell trap
            if self.choices.translation_agent is TranslationAgent.HOST:
                npages = len(segment_pages_of(desc, self.node.mem.page_size))
                yield from handle.actor.busy(
                    c.host_translation_per_page * npages, "sys"
                )
            yield from handle.actor.copy(desc.total_length, "sys")
        vi.send_q.enqueue(desc)
        claimed = vi.send_q.claim()
        assert claimed is desc
        if db_delay is None:
            self.sim.process(self.engine.send_message(vi, desc),
                             name=f"send-vi{vi.vi_id}")
        else:
            # the doorbell was lost (injected fault): the descriptor
            # sits until the NIC's periodic recovery scan finds it
            self.sim.process(self._dispatch_after_scan(vi, desc, db_delay),
                             name=f"db-scan-vi{vi.vi_id}")

    def _dispatch_after_scan(self, vi: VI, desc: Descriptor,
                             delay: float) -> Op:
        yield self.sim.timeout(delay)
        if not desc.posted:
            return  # flushed by a disconnect/error before the scan ran
        yield from self.engine.send_message(vi, desc)

    def post_recv(self, handle, vi: VI, desc: Descriptor) -> Op:
        vi.require_state(ViState.IDLE, ViState.CONNECT_PENDING,
                         ViState.CONNECTED)
        self._validate_post(vi, desc, DescriptorOp.RECEIVE)
        if vi.recv_q.outstanding >= self.costs.max_outstanding:
            raise VipErrorResource(
                f"receive queue of VI {vi.vi_id} is full "
                f"({self.costs.max_outstanding})"
            )
        c = self.costs
        yield from handle.actor.busy(c.post_cost, "user")
        db_kind = "sys" if self.choices.doorbell is DoorbellKind.SYSCALL else "user"
        yield from handle.actor.busy(c.doorbell_cost, db_kind)
        # receive doorbells only advertise descriptor availability; the
        # engine discovers recv descriptors when data arrives, so a
        # dropped ring here would have no NIC-visible effect
        self.node.nic.ring_doorbell(droppable=False)
        vi.recv_q.enqueue(desc)
        if self.engine.has_buffered(vi):
            self.notify_buffered(vi)

    # -- completion discovery ------------------------------------------------
    def _reap_postprocess(self, handle, wq: WorkQueue, desc: Descriptor) -> Op:
        """Host-side work deferred to reap time (kernel receive path)."""
        c = self.costs
        if (wq.kind == "recv" and desc.op is DescriptorOp.RECEIVE
                and self.choices.data_path is DataPath.STAGED
                and desc.control.length > 0):
            nfrags = max(1, -(-desc.control.length // self.mtu))
            yield from handle.actor.busy(c.recv_host_per_frag * nfrags, "sys")
            if self.choices.translation_agent is TranslationAgent.HOST:
                npages = len(segment_pages_of(desc, self.node.mem.page_size,
                                              desc.control.length))
                yield from handle.actor.busy(
                    c.host_translation_per_page * npages, "sys"
                )
            yield from handle.actor.copy(desc.control.length, "sys")

    def send_done(self, handle, vi: VI) -> Op:
        yield from handle.actor.busy(self.costs.reap_cost, "user")
        return vi.send_q.try_reap()

    def recv_done(self, handle, vi: VI) -> Op:
        yield from handle.actor.busy(self.costs.reap_cost, "user")
        desc = vi.recv_q.try_reap()
        if desc is not None:
            yield from self._reap_postprocess(handle, vi.recv_q, desc)
            self.sim.trace("host", "reap_done", self.node.name,
                           desc=desc.desc_id)
        return desc

    def send_wait(self, handle, vi: VI, mode=WaitMode.POLL,
                  timeout: float | None = None) -> Op:
        desc = yield from self._await(handle, vi.send_q.try_reap,
                                      vi.send_q.signal, mode, timeout)
        return desc

    def recv_wait(self, handle, vi: VI, mode=WaitMode.POLL,
                  timeout: float | None = None) -> Op:
        desc = yield from self._await(handle, vi.recv_q.try_reap,
                                      vi.recv_q.signal, mode, timeout)
        yield from self._reap_postprocess(handle, vi.recv_q, desc)
        self.sim.trace("host", "reap_done", self.node.name,
                       desc=desc.desc_id)
        return desc

    def cq_done(self, handle, cq: CompletionQueue) -> Op:
        yield from handle.actor.busy(self.costs.reap_cost, "user")
        entry = cq.try_pop()
        if entry is not None:
            wq, desc = entry
            yield from self._reap_postprocess(handle, wq, desc)
        return entry

    def cq_wait(self, handle, cq: CompletionQueue, mode=WaitMode.POLL,
                timeout: float | None = None) -> Op:
        entry = yield from self._await(handle, cq.try_pop, cq.signal,
                                       mode, timeout)
        wq, desc = entry
        yield from self._reap_postprocess(handle, wq, desc)
        self.sim.trace("host", "reap_done", self.node.name,
                       desc=desc.desc_id)
        return entry

    # -- wait plumbing -----------------------------------------------------
    def _await(self, handle, check, signal, mode: WaitMode,
               timeout: float | None) -> Op:
        """Reap-check loop shared by all Wait variants."""
        actor = handle.actor
        c = self.costs
        deadline = None if timeout is None else self.sim.now + timeout
        while True:
            yield from actor.busy(c.reap_cost, "user")
            item = check()
            if item is not None:
                self.sim.trace("host", "reaped", self.node.name)
                return item
            ev = signal.wait()
            if deadline is not None:
                remaining = deadline - self.sim.now
                if remaining <= 0:
                    raise VipTimeout(f"wait expired after {timeout} us")
                ev = self.sim.any_of([ev, self.sim.timeout(remaining)])
            if mode is WaitMode.POLL:
                yield from actor.spin_wait(ev)
            else:
                yield from actor.block_wait(ev, c.blocking_wakeup,
                                            c.blocking_delay)
            if deadline is not None and self.sim.now >= deadline:
                item = check()
                if item is not None:
                    return item
                raise VipTimeout(f"wait expired after {timeout} us")

    def _wait_event(self, ev: Event, timeout: float | None) -> Op:
        """Wait for a one-shot event with an optional deadline."""
        if timeout is None:
            result = yield ev
            return result
        cond = self.sim.any_of([ev, self.sim.timeout(timeout)])
        yield cond
        if not ev.triggered:
            raise VipTimeout(f"no response within {timeout} us")
        return ev.value


def segment_pages_of(desc: Descriptor, page_size: int,
                     limit: int | None = None) -> list[int]:
    """Pages touched by a descriptor's first ``limit`` bytes (all if None)."""
    pages: list[int] = []
    seen: set[int] = set()
    remaining = desc.total_length if limit is None else limit
    for seg in desc.segments:
        if remaining <= 0:
            break
        take = min(seg.length, remaining)
        if take <= 0:
            continue
        for p in page_span(seg.address, take, page_size):
            if p not in seen:
                seen.add(p)
                pages.append(p)
        remaining -= take
    return pages
