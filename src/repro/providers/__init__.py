"""Simulated VIA provider implementations (M-VIA, Berkeley VIA, cLAN)."""

from .base import SimulatedProvider
from .bvia import BVIA_CHOICES, BVIA_COSTS
from .clan import CLAN_CHOICES, CLAN_COSTS
from .custom import load_spec, spec_to_dict
from .costs import (
    CostModel,
    DataPath,
    DesignChoices,
    DispatchKind,
    DoorbellKind,
    TableLocation,
    TranslationAgent,
    UnexpectedPolicy,
)
from .engine import NicEngine
from .mvia import MVIA_CHOICES, MVIA_COSTS
from .registry import PROVIDERS, ProviderSpec, Testbed, get_spec

__all__ = [
    "BVIA_CHOICES",
    "BVIA_COSTS",
    "CLAN_CHOICES",
    "CLAN_COSTS",
    "CostModel",
    "DataPath",
    "DesignChoices",
    "DispatchKind",
    "DoorbellKind",
    "MVIA_CHOICES",
    "MVIA_COSTS",
    "NicEngine",
    "PROVIDERS",
    "ProviderSpec",
    "SimulatedProvider",
    "TableLocation",
    "Testbed",
    "TranslationAgent",
    "UnexpectedPolicy",
    "get_spec",
    "load_spec",
    "spec_to_dict",
]
