"""An InfiniBand-style provider: the paper's future-work target.

The paper closes with "we also plan to develop a similar micro-benchmark
suite for the upcoming InfiniBand Architecture"; most VIA concepts map
one-to-one onto IBA (VIs ↔ queue pairs, completion queues, memory
registration, doorbells).  This model is a first-generation 1× HCA as
the 2001 authors would have met it:

- 2.5 Gb/s link (8b/10b coded → 250 MB/s raw, ~235 effective), 2 KB MTU,
  cut-through switching — but still behind the same 32-bit/33 MHz PCI
  bus as the other adapters, which becomes the bottleneck;
- translation tables in HCA memory, hardware CQs, direct doorbells;
- **reliable connection** service as the default, with hardware
  link-level acks, and **RDMA read** support (which VIA-era hardware
  lacked).

Running the unmodified VIBe suite against ``Testbed("iba")`` is the
forward-portability demonstration.
"""

from __future__ import annotations

from ..hw.network import NetworkParams
from ..via.constants import Reliability
from .costs import (
    CostModel,
    DataPath,
    DesignChoices,
    DispatchKind,
    DoorbellKind,
    TableLocation,
    TranslationAgent,
    UnexpectedPolicy,
)

__all__ = ["IBA_CHOICES", "IBA_COSTS", "IBA_1X"]

IBA_1X = NetworkParams(
    name="iba-1x",
    bandwidth=235.0,       # 2.5 Gb/s, 8b/10b, minus framing
    prop_delay=0.15,
    mtu=2048,              # IBA's standard MTU
    header_bytes=12,       # LRH + BTH
    per_packet_cost=0.1,
    switch_latency=0.3,
    store_and_forward=False,
)

IBA_CHOICES = DesignChoices(
    translation_agent=TranslationAgent.NIC,
    table_location=TableLocation.NIC_MEMORY,
    doorbell=DoorbellKind.MMIO,
    data_path=DataPath.ZERO_COPY,
    dispatch=DispatchKind.DIRECT,
    unexpected=UnexpectedPolicy.RETRY,    # RNR-NAK retry behaviour
    cq_in_hardware=True,
    supports_rdma_read=True,
    default_reliability=Reliability.RELIABLE_DELIVERY,  # RC service
    nic_tlb_entries=1 << 17,
)

# Calibration: an early HCA — faster silicon than cLAN's, same PCI bus.
IBA_COSTS = CostModel(
    vi_create=2.0,
    vi_destroy=0.1,
    cq_create=30.0,
    cq_destroy=10.0,
    conn_client=900.0,
    conn_server=500.0,
    conn_teardown_active=90.0,
    conn_teardown_passive=45.0,
    reg_base=2.5,
    reg_per_page=2.5,
    dereg_base=3.0,
    dereg_per_page=0.0004,
    post_cost=0.3,
    doorbell_cost=0.2,
    host_translation_per_page=0.0,
    reap_cost=0.25,
    recv_host_per_frag=0.0,
    blocking_wakeup=2.0,
    blocking_delay=6.0,
    nic_dispatch_per_vi=0.0,
    nic_desc_fetch=0.7,
    nic_per_segment=0.2,
    nic_tx_per_frag=0.5,
    nic_rx_per_frag=0.8,
    tlb_hit=0.1,
    tlb_miss=0.1,
    completion_write=0.4,
    cq_notify=0.0,
    ack_tx=0.2,
    ack_rx=0.2,
    max_transfer_size=1 << 20,   # IBA messages up to 2 GB; keep sane
    max_segments=32,
)
