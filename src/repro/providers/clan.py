"""Giganet cLAN 1.3 model: native hardware VIA.

The cLAN1000 host adapter implements VIA in silicon: hardware doorbells
mapped into user space, translation tables resident in NIC memory,
hardware completion queues, and link-level reliable delivery.  The
architectural consequences the paper observes:

- the **lowest latency** and the best bandwidth over most of the size
  range (Fig. 3);
- translation tables in **NIC memory** never miss, so cLAN is a flat
  control in the buffer-reuse study (Fig. 5);
- **hardware-indexed doorbells** — no per-VI polling, flat in the
  multi-VI study (Fig. 6);
- hardware CQs: associating work queues with a CQ costs nothing
  measurable (§4.3.3);
- connection establishment goes through a hardware/driver handshake
  and is very expensive (Table 1: 2454 µs), as is teardown (155 µs).
"""

from __future__ import annotations

from ..via.constants import Reliability
from .costs import (
    CostModel,
    DataPath,
    DesignChoices,
    DispatchKind,
    DoorbellKind,
    TableLocation,
    TranslationAgent,
    UnexpectedPolicy,
)

__all__ = ["CLAN_CHOICES", "CLAN_COSTS"]

CLAN_CHOICES = DesignChoices(
    translation_agent=TranslationAgent.NIC,
    table_location=TableLocation.NIC_MEMORY,  # never misses
    doorbell=DoorbellKind.MMIO,
    data_path=DataPath.ZERO_COPY,
    dispatch=DispatchKind.DIRECT,
    unexpected=UnexpectedPolicy.RETRY,
    cq_in_hardware=True,
    supports_rdma_read=False,                 # cLAN implements RDMA write only
    default_reliability=Reliability.RELIABLE_DELIVERY,
    nic_tlb_entries=1 << 16,                  # effectively unbounded NIC table
)

# Calibration data (µs unless noted): chosen so Table 1 / Figs. 1-7 land
# near the paper's cLAN magnitudes.
CLAN_COSTS = CostModel(
    # Table 1
    vi_create=3.0,
    vi_destroy=0.11,
    cq_create=54.0,
    cq_destroy=15.0,
    conn_client=1600.0,
    conn_server=850.0,
    conn_teardown_active=155.0,
    conn_teardown_passive=80.0,
    # Fig. 1 / Fig. 2
    reg_base=3.0,
    reg_per_page=3.0,
    dereg_base=4.0,
    dereg_per_page=0.0005,
    # host path
    post_cost=0.4,
    doorbell_cost=0.3,                        # one MMIO store
    host_translation_per_page=0.0,
    reap_cost=0.3,
    recv_host_per_frag=0.0,
    blocking_wakeup=2.0,
    blocking_delay=7.0,
    # NIC engine — dedicated silicon
    nic_dispatch_per_vi=0.0,
    nic_desc_fetch=1.0,
    nic_per_segment=0.3,
    nic_tx_per_frag=0.8,
    nic_rx_per_frag=1.2,
    tlb_hit=0.15,
    tlb_miss=0.15,                            # unreachable: table is on-NIC
    completion_write=0.5,
    cq_notify=0.0,                            # hardware CQ
    ack_tx=0.3,                               # link-level ack in hardware
    ack_rx=0.3,
    max_transfer_size=65536,
    max_segments=16,
)
