"""The NIC-side protocol engine shared by all simulated providers.

This module implements the data-transfer machinery: descriptor
dispatch, translation, DMA, fragmentation, wire transmission, receive
matching/placement, completion writeback, CQ notification, the three
reliability levels (local completion, delivery ack, reception ack),
NAK-driven retry, retransmission timers, and RDMA read/write.

Which costs are paid where is governed by the provider's
:class:`~repro.providers.costs.DesignChoices` — the same engine
reproduces M-VIA, Berkeley VIA and cLAN behaviour purely through those
knobs plus the provider's :class:`~repro.providers.costs.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

from ..hw import link as _hwlink
from ..hw.link import Packet
from ..hw.memory import page_span
from ..hw.network import Switch
from ..hw.nic import NIC
from ..obs.metrics import DEFAULT_SIZE_BUCKETS
from ..sim import Event
from ..via.constants import (
    ACK_WIRE_BYTES,
    CompletionStatus,
    DescriptorOp,
    Reliability,
    ViState,
)
from ..via.descriptor import Descriptor
from ..via.errors import VipProtectionError
from ..via.vi import VI, WorkQueue
from .costs import (
    DataPath,
    DispatchKind,
    TableLocation,
    TranslationAgent,
    UnexpectedPolicy,
)

if TYPE_CHECKING:  # pragma: no cover
    from .base import SimulatedProvider

__all__ = [
    "DataFrag",
    "RdmaReadReq",
    "AckPayload",
    "NicEngine",
]

Op = Generator[Event, Any, Any]


# ---------------------------------------------------------------------------
# wire payloads
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DataFrag:
    """One fragment of a message, an RDMA write, or an RDMA read response."""

    src_vi: int
    dst_vi: int
    seq: int
    frag: int
    nfrags: int
    offset: int          # byte offset of this fragment within the message
    total_len: int
    data: bytes
    op: str              # "send" | "rdma_write" | "read_resp"
    immediate: int | None = None
    remote_addr: int | None = None    # rdma_write placement base
    remote_handle: int | None = None
    read_id: int | None = None        # read_resp correlation


@dataclass(frozen=True)
class RdmaReadReq:
    src_vi: int          # initiator VI (for the response)
    dst_vi: int          # target VI
    read_id: int
    remote_addr: int
    remote_handle: int
    length: int


@dataclass(frozen=True)
class AckPayload:
    dst_vi: int          # the *sender's* VI (where the send descriptor waits)
    seq: int
    kind: str            # "ack" | "nak_retry" | "nak_prot"


@dataclass
class _SendState:
    """Sender-side record of an un-acknowledged reliable message."""

    vi: VI
    desc: Descriptor
    frags: list[DataFrag]
    dst_node: str
    acked: bool = False
    retries: int = 0


@dataclass
class _RxState:
    """Receiver-side reassembly cursor for the in-flight message on a VI."""

    seq: int
    total_len: int
    nfrags: int
    desc: Descriptor | None          # bound receive descriptor (None = drop/buffer)
    buffer: bytearray | None
    #: fragment indices placed so far; a set (not a count) so that
    #: retransmitted or wire-duplicated fragments of the in-flight
    #: message are absorbed idempotently
    frags_seen: set = field(default_factory=set)
    status: CompletionStatus = CompletionStatus.SUCCESS
    immediate: int | None = None
    buffering: bool = False          # unexpected message being kernel-buffered


@dataclass
class _BufferedMsg:
    """A kernel-buffered unexpected message (BUFFER policy)."""

    data: bytes
    immediate: int | None
    total_len: int


@dataclass
class _BurstPlan:
    """A fully-solved fast-forward of one message's wire journey.

    ``commits`` mutate counters/occupancy synchronously at commit time;
    ``completions`` are (timestamp, callback) pairs scheduled as single
    events — the only real events a burst leaves behind besides the
    send-engine hold until ``hold_until``.
    """

    hold_until: float
    t0: float
    t_end: float
    events_est: int
    commits: list
    completions: list


# ---------------------------------------------------------------------------
# gather/scatter helpers (pure, time-free; DMA time is charged separately)
# ---------------------------------------------------------------------------

def gather(mem, desc: Descriptor) -> bytes:
    """Read a descriptor's gather list out of host memory."""
    parts = [mem.read(seg.address, seg.length) for seg in desc.segments if seg.length]
    return b"".join(parts)


def scatter(mem, desc: Descriptor, data: bytes) -> None:
    """Write ``data`` across a descriptor's scatter list, in order."""
    off = 0
    for seg in desc.segments:
        if off >= len(data):
            break
        chunk = data[off : off + seg.length]
        mem.write(seg.address, chunk)
        off += len(chunk)


def segment_pages(segments: Iterable, page_size: int) -> list[int]:
    """All virtual pages touched by a list of data segments."""
    pages: list[int] = []
    seen: set[int] = set()
    for seg in segments:
        if seg.length == 0:
            continue
        for p in page_span(seg.address, seg.length, page_size):
            if p not in seen:
                seen.add(p)
                pages.append(p)
    return pages


def fragment_sizes(total: int, mtu: int) -> list[int]:
    """Fragment byte counts for a message (always at least one fragment)."""
    if total == 0:
        return [0]
    sizes = []
    remaining = total
    while remaining > 0:
        take = min(mtu, remaining)
        sizes.append(take)
        remaining -= take
    return sizes


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------

class NicEngine:
    """Protocol engine bound to one provider/node."""

    def __init__(self, provider: "SimulatedProvider") -> None:
        self.p = provider
        self.sim = provider.sim
        self.node = provider.node
        self.nic = provider.node.nic
        self.costs = provider.costs
        self.choices = provider.choices
        self.nic.rx_handler = self.on_packet
        self._unacked: dict[tuple[int, int], _SendState] = {}
        self._pending_reads: dict[int, tuple[VI, Descriptor, bytearray, int]] = {}
        self._buffered: dict[int, list[_BufferedMsg]] = {}
        #: vi_id -> seq of a duplicate RDMA write whose fragments we skip
        self._rdma_skip: dict[int, int] = {}
        self._next_read_id = 1
        #: virtual recv-engine occupancy left behind by an arithmetic
        #: burst: event-path rx processes arriving before this instant
        #: wait it out, as if the engine resource had been held for real.
        #: Stays 0.0 in pure packet mode.
        self._ff_rx_free = 0.0
        # observability
        self.messages_sent = 0
        self.messages_received = 0
        self.retransmissions = 0
        self.naks_sent = 0
        self.drops = 0
        self.dma_aborts = 0

    # -- small helpers -------------------------------------------------------
    @property
    def mtu(self) -> int:
        return self.p.mtu

    def _peer_node(self, vi: VI) -> str:
        assert vi.peer is not None
        return vi.peer[0]

    def _translate_pages(self, pages: list[int]) -> Op:
        """NIC-agent translation: TLB hits/misses with table fetches."""
        c = self.costs
        if self.choices.table_location is TableLocation.NIC_MEMORY:
            # Full table on the NIC: every lookup is a hit by construction.
            if pages:
                yield self.sim.timeout(c.tlb_hit * len(pages))
            return
        table = self.node.mem.page_table
        for vpage in pages:
            frame = self.nic.tlb.lookup(vpage)
            if frame is None:
                # fetch the entry from the host-resident table over the bus
                yield self.sim.timeout(c.tlb_miss)
                yield from self.nic.dma.transfer(c.tlb_entry_bytes)
                frame = table.translate(vpage)
                self.nic.tlb.insert(vpage, frame)
            else:
                yield self.sim.timeout(c.tlb_hit)

    def _finish(self, wq: WorkQueue, desc: Descriptor,
                status: CompletionStatus, length: int) -> Op:
        """Complete a descriptor: status writeback + CQ deposit + wakeups.

        FIFO order is preserved by :meth:`WorkQueue.finish` — an
        out-of-order result is parked until everything ahead of it has
        finished."""
        c = self.costs
        yield self.sim.timeout(c.completion_write)
        if wq.cq is not None and not self.choices.cq_in_hardware:
            yield self.sim.timeout(c.cq_notify)
        wq.finish(desc, status, length)
        self.sim.trace("via", "completed", self.node.name,
                       desc=desc.desc_id, queue=wq.kind,
                       status=status.value)

    def _dma(self, nbytes: int) -> Op:
        """A data-movement DMA that an injected ``dma_abort`` fault can
        fail.  Returns False when the transfer aborted partway (the bus
        setup time is charged, nothing moves) — callers treat the
        fragment as lost, which the reliable levels recover via RTO/NAK.
        Control DMAs (descriptor fetches, table-entry fetches) and RDMA
        placement are not abortable in this model.
        """
        faults = self.sim.faults
        if faults is not None and faults.dma_abort(self.nic.name):
            self.dma_aborts += 1
            self.sim.trace("nic", "dma_abort", self.node.name)
            yield self.sim.timeout(self.nic.dma.per_transfer_cost)
            return False
        yield from self.nic.dma.transfer(nbytes)
        return True

    def _tx_packet(self, dst_node: str, kind: str, size: int, payload) -> None:
        """Fire-and-forget transmission (its own process, FIFO behind others)."""
        pkt = Packet(src=self.node.name, dst=dst_node, kind=kind,
                     size=size, payload=payload)
        self.sim.process(self.nic.transmit(pkt), name=f"tx-{kind}")

    # =====================================================================
    # flow-level fast-forward (burst) path
    # =====================================================================
    #
    # At "auto"/"flow" fidelity, when a message's entire journey is
    # provably predictable — no tracer/faults/checker armed, loss-free
    # idle wires, an uncontended switch port, a connected peer with a
    # posted receive descriptor and no reassembly in flight — the
    # per-fragment event cascade (DMA, tx, serialise, switch, port, rx
    # engine, translate, placement, ack) collapses into closed-form
    # recurrences.  :meth:`_plan_burst` solves every timestamp
    # arithmetically without mutating state (the receiver TLB walk is
    # snapshot/restored); :meth:`_run_burst` then commits counters in
    # bulk, leaves virtual-occupancy watermarks on every resource
    # touched so concurrent event-path traffic still queues behind the
    # burst, and schedules only the completion writebacks as real
    # events.  Anything the plan cannot prove falls back to the packet
    # path, which stays bit-identical to the pre-burst model.

    def _ff_route(self, vi: VI):
        """Resolve forward and reverse wire paths through a flat Fabric.

        Returns the hardware objects a burst plan needs, or None when
        the topology is anything the arithmetic model does not cover
        (tiered fabrics, detached ports, unexpected sinks)."""
        port = self.nic.port
        if port is None or vi.peer is None:
            return None
        up = port.out_channel
        switch = getattr(up.sink, "__self__", None)
        if not isinstance(switch, Switch):
            return None
        dst = vi.peer[0]
        down = switch._downlinks.get(dst)
        oport = switch._ports.get(dst)
        if down is None or oport is None:
            return None
        peer_nic = getattr(down.sink, "__self__", None)
        if not isinstance(peer_nic, NIC) or peer_nic.port is None:
            return None
        peer_eng = getattr(peer_nic.rx_handler, "__self__", None)
        if not isinstance(peer_eng, NicEngine):
            return None
        peer_up = peer_nic.port.out_channel
        if getattr(peer_up.sink, "__self__", None) is not switch:
            return None
        sdown = switch._downlinks.get(self.node.name)
        sport = switch._ports.get(self.node.name)
        if sdown is None or sport is None:
            return None
        if getattr(sdown.sink, "__self__", None) is not self.nic:
            return None
        return (up, switch, oport, down, peer_nic, peer_eng,
                peer_up, sport, sdown)

    def _plan_burst(self, vi: VI, desc: Descriptor,
                    frags: list[DataFrag]) -> _BurstPlan | None:
        """Try to solve the whole message arithmetically.  None = fall back."""
        sim = self.sim
        n = len(frags)
        if n < 2 and sim.fidelity != "flow":
            return None
        if frags[0].op != "send":
            return None
        if (sim.tracer is not None or sim.faults is not None
                or sim.checker is not None):
            return None
        reliable = vi.reliability is not Reliability.UNRELIABLE
        if reliable and self.p._recovery_armed:
            return None
        route = self._ff_route(vi)
        if route is None:
            return None
        (up, switch, oport, down, peer_nic, peer_eng,
         peer_up, sport, sdown) = route
        peer_vi = peer_eng.p.vis.get(vi.peer[1])
        if (peer_vi is None or not peer_vi.is_connected
                or peer_vi.rx_state is not None
                or peer_vi.expected_rx_seq != frags[0].seq
                or peer_eng.has_buffered(peer_vi)
                or peer_vi.recv_q.claimable == 0):
            return None
        rdesc = peer_vi.recv_q._claimable[0]
        total_len = frags[0].total_len
        if total_len > rdesc.total_length:
            return None

        def _wire_ok(ch) -> bool:
            return (ch.loss_rate == 0.0 and ch._line.in_use == 0
                    and ch._line.queued == 0)

        dma = self.nic.dma
        pdma = peer_nic.dma
        if not (_wire_ok(up) and _wire_ok(down)):
            return None
        if (dma._bus.in_use or dma._bus.queued
                or pdma._bus.in_use or pdma._bus.queued):
            return None
        if peer_nic.recv_engine.in_use or peer_nic.recv_engine.queued:
            return None
        if reliable:
            if not (_wire_ok(peer_up) and _wire_ok(sdown)):
                return None
            if self.nic.recv_engine.in_use or self.nic.recv_engine.queued:
                return None
        if not oport.cut_through and n > oport.capacity_frames:
            return None

        c = self.costs
        t0 = sim._now
        sizes = [len(f.data) for f in frags]
        nbytes = sum(sizes)
        # -- sender engine: per-frag DMA fetch + tx cost ------------------
        # every recurrence below replays the event path's float additions
        # in the same order and association (x + transfer_time(n), one
        # cost per timeout) so the computed timestamps are bit-identical
        dma_free = dma._ff_busy_until
        tx_cost = c.nic_tx_per_frag
        emit: list[float] = []
        prev = t0
        for size in sizes:
            ds = prev if prev > dma_free else dma_free
            dma_free = ds + dma.transfer_time(size)
            prev = dma_free + tx_cost
            emit.append(prev)
        # -- forward wire path: uplink -> switch -> port -> downlink ------
        _, up_ends, up_delivers = up.plan_burst(
            emit, sizes, line_free=up._ff_busy_until)
        arrive_port = up_delivers + switch.params.switch_latency
        port_plan = oport.plan_burst(arrive_port, sizes)
        if port_plan is None:
            return None
        departs, port_commit = port_plan
        _, down_ends, rx_arrive = down.plan_burst(
            departs, sizes, line_free=down._ff_busy_until)
        # -- receiver engine: per-frag rx + translate + placement ---------
        rc = peer_eng.costs
        rch = peer_eng.choices
        translate_on = (rch.translation_agent is TranslationAgent.NIC
                        and rch.data_path is DataPath.ZERO_COPY)
        host_table = rch.table_location is not TableLocation.NIC_MEMORY
        ptlb = peer_nic.tlb
        snap = None
        if translate_on and host_table:
            # the LRU walk below mutates the real cache so hit/miss
            # sequencing is exact; restored verbatim on late fallback
            snap = (ptlb._cache.copy(), ptlb.hits, ptlb.misses,
                    ptlb.evictions)

        def _restore_tlb() -> None:
            if snap is not None:
                ptlb._cache, ptlb.hits, ptlb.misses, ptlb.evictions = snap

        ptable = peer_eng.node.mem.page_table
        pdma_free = pdma._ff_busy_until
        rx_cost = rc.nic_rx_per_frag
        r_free = peer_eng._ff_rx_free
        pages_total = 0
        misses = 0
        miss_bytes = 0
        for k in range(n):
            t = float(rx_arrive[k])
            if r_free > t:
                t = r_free
            t += rx_cost
            if translate_on:
                pages = peer_eng._placement_pages(
                    rdesc, frags[k].offset, sizes[k])
                pages_total += len(pages)
                if not host_table:
                    if pages:
                        t += rc.tlb_hit * len(pages)
                else:
                    for vpage in pages:
                        frame = ptlb.lookup(vpage)
                        if frame is None:
                            misses += 1
                            miss_bytes += rc.tlb_entry_bytes
                            t += rc.tlb_miss
                            ds = t if t > pdma_free else pdma_free
                            t = ds + pdma.transfer_time(rc.tlb_entry_bytes)
                            pdma_free = t
                            ptlb.insert(vpage, ptable.translate(vpage))
                        else:
                            t += rc.tlb_hit
            ds = t if t > pdma_free else pdma_free
            t = ds + pdma.transfer_time(sizes[k])
            pdma_free = t
            r_free = t

        def _complete_seq(t_: float, wq: WorkQueue, costs_, choices_) -> float:
            # one addition per timeout, as _finish issues them
            t_ += costs_.completion_write
            if wq.cq is not None and not choices_.cq_in_hardware:
                t_ += costs_.cq_notify
            return t_

        # -- last fragment: ack emission + receiver completion ------------
        t = r_free
        ack_emit = 0.0
        if vi.reliability is Reliability.RELIABLE_DELIVERY:
            t += rc.ack_tx
            ack_emit = t
        t = _complete_seq(t, peer_vi.recv_q, rc, rch)
        recv_complete_at = t
        if vi.reliability is Reliability.RELIABLE_RECEPTION:
            t += rc.ack_tx
            ack_emit = t
        r_free = t
        # -- reverse path: the ack packet back to the sender --------------
        send_complete_at = None
        snd_rx_free = 0.0
        a_ends = sd_ends = None
        sport_commit: Callable[[], None] | None = None
        if reliable:
            _, a_ends, a_del = peer_up.plan_burst(
                [ack_emit], [ACK_WIRE_BYTES],
                line_free=peer_up._ff_busy_until)
            s_arrive = float(a_del[0]) + switch.params.switch_latency
            splan = sport.plan_burst([s_arrive], [ACK_WIRE_BYTES])
            if splan is None:
                _restore_tlb()
                return None
            s_departs, sport_commit = splan
            _, sd_ends, sd_del = sdown.plan_burst(
                s_departs, [ACK_WIRE_BYTES],
                line_free=sdown._ff_busy_until)
            ta = float(sd_del[0])
            if self._ff_rx_free > ta:
                ta = self._ff_rx_free
            ta += c.ack_rx
            snd_rx_free = ta
            send_complete_at = _complete_seq(
                ta, vi.send_q, c, self.choices)
        t_end = recv_complete_at
        if send_complete_at is not None and send_complete_at > t_end:
            t_end = send_complete_at
        if t_end > sim.ff_horizon():
            # a bounded run would have cut the cascade mid-flight; the
            # packet path reproduces the truncated state exactly
            _restore_tlb()
            return None

        metrics = sim.metrics
        data = b"".join(f.data for f in frags)
        immediate = frags[0].immediate
        seq = frags[0].seq
        est = n * 17 + pages_total + 2 * misses + (15 if reliable else 0)

        def commit() -> None:
            # packet-id parity with the event path (no Packet objects)
            for _ in range(n + (1 if reliable else 0)):
                next(_hwlink._packet_ids)
            self.nic.note_tx_burst(n)
            dma.note_burst(n, nbytes, dma_free)
            up.note_burst(n, nbytes, float(up_ends[-1]))
            switch.forwarded += n
            port_commit()
            down.note_burst(n, nbytes, float(down_ends[-1]))
            peer_nic.note_rx_burst(n)
            peer_eng.messages_received += 1
            if metrics is not None:
                metrics.observe(
                    f"via.{peer_eng.node.name}.msg_recv_bytes",
                    total_len, DEFAULT_SIZE_BUCKETS)
            pdma.note_burst(n + misses, nbytes + miss_bytes, pdma_free)
            peer_vi.expected_rx_seq = seq + 1
            claimed = peer_vi.recv_q.claim()
            assert claimed is rdesc
            peer_eng._ff_rx_free = r_free
            if reliable:
                peer_nic.note_tx_burst(1)
                peer_up.note_burst(1, ACK_WIRE_BYTES, float(a_ends[-1]))
                switch.forwarded += 1
                sport_commit()
                sdown.note_burst(1, ACK_WIRE_BYTES, float(sd_ends[-1]))
                self.nic.note_rx_burst(1)
                self._ff_rx_free = snd_rx_free

        def complete_recv(_ev) -> None:
            scatter(peer_eng.node.mem, rdesc, data)
            rdesc.control.immediate = immediate
            peer_vi.recv_q.finish(rdesc, CompletionStatus.SUCCESS,
                                  total_len)

        completions = [(recv_complete_at, complete_recv)]
        if reliable:
            def complete_send(_ev) -> None:
                vi.send_q.finish(desc, CompletionStatus.SUCCESS,
                                 desc.total_length)

            completions.append((send_complete_at, complete_send))
        return _BurstPlan(hold_until=emit[-1], t0=t0, t_end=t_end,
                          events_est=est, commits=[commit],
                          completions=completions)

    def _run_burst(self, plan: _BurstPlan) -> Op:
        """Commit a solved burst and hold the engine for its tx window."""
        sim = self.sim
        for fn in plan.commits:
            fn()
        now = sim._now
        for at, fn in plan.completions:
            ev = sim.timeout(at - now)
            ev.callbacks.append(fn)
        sim.note_fast_forward(plan.t0, plan.t_end, plan.events_est)
        yield sim.timeout(plan.hold_until - now)

    # =====================================================================
    # send path
    # =====================================================================

    def send_message(self, vi: VI, desc: Descriptor) -> Op:
        """Process one posted send/RDMA descriptor (runs as a process)."""
        c = self.costs
        ch = self.choices
        self.sim.trace("nic", "send_queued", self.node.name,
                       vi=vi.vi_id, desc=desc.desc_id)
        yield self.nic.send_engine.request()
        try:
            self.sim.trace("nic", "engine_acquired", self.node.name,
                           vi=vi.vi_id, desc=desc.desc_id)
            if ch.dispatch is DispatchKind.POLLED:
                # firmware scans every open VI's queue before finding ours
                yield self.sim.timeout(c.nic_dispatch_per_vi * self.p.open_vi_count)
            if ch.data_path is DataPath.ZERO_COPY:
                yield from self.nic.dma.transfer(c.desc_fetch_bytes)
            extra_segs = max(0, len(desc.segments) - 1)
            yield self.sim.timeout(c.nic_desc_fetch + c.nic_per_segment * extra_segs)

            if desc.op is DescriptorOp.RDMA_READ:
                yield from self._issue_rdma_read(vi, desc)
                return  # completion arrives with the response

            self.sim.trace("nic", "desc_fetched", self.node.name,
                           vi=vi.vi_id, desc=desc.desc_id)
            if (ch.translation_agent is TranslationAgent.NIC
                    and ch.data_path is DataPath.ZERO_COPY):
                pages = segment_pages(desc.segments, self.node.mem.page_size)
                yield from self._translate_pages(pages)
            self.sim.trace("nic", "tx_translated", self.node.name,
                           vi=vi.vi_id, desc=desc.desc_id)

            chk = self.sim.checker
            if chk is not None:
                chk.on_local_dma(self.p, vi, desc)
            data = gather(self.node.mem, desc)
            frags = self._build_frags(vi, desc, data)
            plan = (self._plan_burst(vi, desc, frags)
                    if self.sim.fidelity != "packet" else None)
            if plan is not None:
                yield from self._run_burst(plan)
            else:
                reliable = vi.reliability is not Reliability.UNRELIABLE
                if reliable:
                    state = _SendState(vi, desc, frags, self._peer_node(vi))
                    self._unacked[(vi.vi_id, frags[0].seq)] = state
                    if self.p._recovery_armed:
                        self.sim.process(self._retransmit_timer(state),
                                         name=f"rto-vi{vi.vi_id}")
                for frag in frags:
                    ok = yield from self._dma(len(frag.data))
                    if not ok:
                        continue  # fragment lost at the I/O bus
                    yield self.sim.timeout(c.nic_tx_per_frag)
                    self.sim.trace("nic", "frag_out", self.node.name,
                                   vi=vi.vi_id, seq=frag.seq, frag=frag.frag)
                    self._tx_packet(self._peer_node(vi), "via-data",
                                    len(frag.data), frag)
            self.messages_sent += 1
            metrics = self.sim.metrics
            if metrics is not None:
                metrics.observe(f"via.{self.node.name}.msg_sent_bytes",
                                desc.total_length, DEFAULT_SIZE_BUCKETS)
        finally:
            self.nic.send_engine.release()
        if vi.reliability is Reliability.UNRELIABLE:
            # local completion: data is out of the user buffer
            yield from self._finish(vi.send_q, desc,
                                    CompletionStatus.SUCCESS, desc.total_length)

    def _build_frags(self, vi: VI, desc: Descriptor, data: bytes) -> list[DataFrag]:
        assert vi.peer is not None
        seq = vi.next_send_seq
        vi.next_send_seq += 1
        op = "rdma_write" if desc.op is DescriptorOp.RDMA_WRITE else "send"
        sizes = fragment_sizes(len(data), self.mtu)
        frags = []
        offset = 0
        for i, size in enumerate(sizes):
            frags.append(
                DataFrag(
                    src_vi=vi.vi_id,
                    dst_vi=vi.peer[1],
                    seq=seq,
                    frag=i,
                    nfrags=len(sizes),
                    offset=offset,
                    total_len=len(data),
                    data=data[offset : offset + size],
                    op=op,
                    immediate=desc.control.immediate,
                    remote_addr=(desc.address_segment.address
                                 if desc.address_segment else None),
                    remote_handle=(desc.address_segment.remote_handle_id
                                   if desc.address_segment else None),
                )
            )
            offset += size
        return frags

    def _issue_rdma_read(self, vi: VI, desc: Descriptor) -> Op:
        assert vi.peer is not None and desc.address_segment is not None
        read_id = self._next_read_id
        self._next_read_id += 1
        length = desc.total_length
        self._pending_reads[read_id] = (vi, desc, bytearray(length), 0)
        req = RdmaReadReq(
            src_vi=vi.vi_id,
            dst_vi=vi.peer[1],
            read_id=read_id,
            remote_addr=desc.address_segment.address,
            remote_handle=desc.address_segment.remote_handle_id,
            length=length,
        )
        yield self.sim.timeout(self.costs.nic_tx_per_frag)
        self._tx_packet(vi.peer[0], "via-read", ACK_WIRE_BYTES, req)

    def _retransmit_timer(self, state: _SendState) -> Op:
        c = self.costs
        while not state.acked and state.retries < c.max_retries:
            yield self.sim.timeout(c.rto)
            if state.acked:
                return
            state.retries += 1
            yield from self._resend(state)
        if not state.acked:
            yield from self._transport_failure(state)

    def _transport_failure(self, state: _SendState) -> Op:
        """Retries exhausted: the connection is broken (VIA semantics).

        The failing descriptor completes with TRANSPORT_ERROR, the VI
        transitions to the ERROR state, and everything else still posted
        on it is flushed — a catastrophic error is a connection-level
        event, not a per-descriptor one."""
        vi = state.vi
        self._unacked.pop((vi.vi_id, state.frags[0].seq), None)
        yield from self._finish(vi.send_q, state.desc,
                                CompletionStatus.TRANSPORT_ERROR, 0)
        if vi.state is ViState.CONNECTED:
            vi.to_state(ViState.ERROR)
            # drop every other pending reliable message on this VI
            for key in [k for k in self._unacked if k[0] == vi.vi_id]:
                self._unacked[key].acked = True  # silence its timer
                del self._unacked[key]
            vi.send_q.flush()
            vi.recv_q.flush()
            self.p.post_async_error(
                vi, detail=f"retries exhausted after {state.retries} attempts"
            )

    def _resend(self, state: _SendState) -> Op:
        c = self.costs
        chk = self.sim.checker
        if chk is not None:
            chk.on_retransmit(state.vi)
        self.retransmissions += 1
        yield self.nic.send_engine.request()
        try:
            for frag in state.frags:
                ok = yield from self._dma(len(frag.data))
                if not ok:
                    continue  # lost again; the next retry covers it
                yield self.sim.timeout(c.nic_tx_per_frag)
                self._tx_packet(state.dst_node, "via-data", len(frag.data), frag)
        finally:
            self.nic.send_engine.release()

    # =====================================================================
    # receive path
    # =====================================================================

    def on_packet(self, pkt: Packet) -> None:
        """NIC rx_handler: dispatch by payload type."""
        pl = pkt.payload
        if isinstance(pl, DataFrag):
            self.sim.process(self._rx_data(pl), name="rx-data")
        elif isinstance(pl, AckPayload):
            self.sim.process(self._rx_ack(pl), name="rx-ack")
        elif isinstance(pl, RdmaReadReq):
            self.sim.process(self._rx_read_req(pl), name="rx-read")
        else:
            # connection-management traffic is handled by the provider
            self.p.handle_control_packet(pl)

    def _ff_rx_gate(self) -> Op:
        """Queue behind a burst's virtual recv-engine occupancy."""
        ff = self._ff_rx_free
        if ff > 0.0:
            wait = ff - self.sim._now
            if wait > 0.0:
                yield self.sim.timeout(wait)

    def _rx_data(self, pl: DataFrag) -> Op:
        c = self.costs
        yield from self._ff_rx_gate()
        yield self.nic.recv_engine.request()
        try:
            yield self.sim.timeout(c.nic_rx_per_frag)
            self.sim.trace("nic", "frag_in", self.node.name,
                           vi=pl.dst_vi, seq=pl.seq, frag=pl.frag)
            vi = self.p.vis.get(pl.dst_vi)
            if vi is None or not vi.is_connected:
                self.drops += 1
                return
            if pl.op == "read_resp":
                yield from self._rx_read_resp(pl)
            elif pl.op == "rdma_write":
                yield from self._rx_rdma_write(vi, pl)
            else:
                yield from self._rx_send(vi, pl)
        finally:
            self.nic.recv_engine.release()

    # -- ordinary sends ---------------------------------------------------
    def _rx_send(self, vi: VI, pl: DataFrag) -> Op:
        c = self.costs
        st: _RxState | None = vi.rx_state
        if pl.frag == 0:
            if st is not None and st.seq == pl.seq:
                # retransmitted (or wire-duplicated) first fragment of
                # the in-flight message: resume reassembly — the
                # frags_seen set and idempotent placement absorb the
                # replayed fragments without re-binding a descriptor
                pass
            elif self._duplicate(vi, pl):
                return
            elif (st is not None
                    and vi.reliability is not Reliability.UNRELIABLE):
                # the next message arrived while an earlier reassembly
                # still has a hole (a fragment lost at placement): binding
                # it would orphan the claimed descriptor and the resend of
                # the older message would then be mis-filtered as a
                # duplicate.  In-order delivery must finish the in-flight
                # message first, so NAK this one like any future seq.
                self.naks_sent += 1
                self.drops += 1
                self.sim.process(self._nak_later(vi, pl.seq), name="nak-hole")
                return
            else:
                st = self._bind_rx(vi, pl)
                vi.rx_state = st
        if st is None or st.seq != pl.seq:
            # stale fragment of a dropped/retried message
            self.drops += 1
            return
        if pl.frag in st.frags_seen:
            self.drops += 1
            return
        # placement (skipped when dropping or when a length error occurred)
        if st.buffer is not None and st.status is CompletionStatus.SUCCESS:
            if (self.choices.translation_agent is TranslationAgent.NIC
                    and self.choices.data_path is DataPath.ZERO_COPY
                    and st.desc is not None):
                pages = self._placement_pages(st.desc, pl.offset, len(pl.data))
                yield from self._translate_pages(pages)
            ok = yield from self._dma(len(pl.data))
            if not ok:
                return  # placement failed: fragment effectively lost
            st.buffer[pl.offset : pl.offset + len(pl.data)] = pl.data
        st.frags_seen.add(pl.frag)
        if len(st.frags_seen) < pl.nfrags:
            return
        # ---- last fragment: message is complete ----
        vi.rx_state = None
        self.messages_received += 1
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.observe(f"via.{self.node.name}.msg_recv_bytes",
                            st.total_len, DEFAULT_SIZE_BUCKETS)
        reliable = vi.reliability is not Reliability.UNRELIABLE
        if reliable and vi.reliability is Reliability.RELIABLE_DELIVERY:
            yield from self._send_ack(vi, pl.seq, "ack")
        if st.buffering:
            self._buffered.setdefault(vi.vi_id, []).append(
                _BufferedMsg(bytes(st.buffer or b""), st.immediate, st.total_len)
            )
            self.p.notify_buffered(vi)
        elif st.desc is not None:
            if st.status is CompletionStatus.SUCCESS and st.buffer is not None:
                chk = self.sim.checker
                if chk is not None:
                    chk.on_local_dma(self.p, vi, st.desc)
                scatter(self.node.mem, st.desc, bytes(st.buffer))
                st.desc.control.immediate = st.immediate
            length = st.total_len if st.status is CompletionStatus.SUCCESS else 0
            yield from self._finish(vi.recv_q, st.desc, st.status, length)
        if reliable and vi.reliability is Reliability.RELIABLE_RECEPTION:
            yield from self._send_ack(vi, pl.seq, "ack")

    def _duplicate(self, vi: VI, pl: DataFrag) -> bool:
        """Exactly-once filtering: a retransmission of an already-accepted
        message must not consume another descriptor.  Re-ack it so the
        sender (whose ack was evidently lost) can complete.

        Also rejects *future* messages on reliable VIs: if seq N was
        lost (or NAKed) while seq N+1 was already in flight, accepting
        N+1 early would deliver out of order and later filter the
        retransmission of N as a duplicate — losing N while acking it.
        Reliable levels must deliver in order, so N+1 is NAKed and the
        sender retransmits it once N has gone through."""
        if pl.seq >= vi.expected_rx_seq:
            if (pl.seq > vi.expected_rx_seq
                    and vi.reliability is not Reliability.UNRELIABLE):
                self.naks_sent += 1
                self.drops += 1
                self.sim.process(self._nak_later(vi, pl.seq), name="nak-ooo")
                return True
            return False
        if vi.reliability is not Reliability.UNRELIABLE:
            self.sim.process(self._send_ack(vi, pl.seq, "ack"), name="re-ack")
        self.drops += 1
        return True

    def _bind_rx(self, vi: VI, pl: DataFrag) -> _RxState | None:
        """First fragment of a message: match it to a receive descriptor."""
        desc = vi.recv_q.claim()
        if desc is None:
            return self._unexpected(vi, pl)
        vi.expected_rx_seq = pl.seq + 1
        chk = self.sim.checker
        if chk is not None:
            chk.on_deliver(vi, pl.seq)
        st = _RxState(seq=pl.seq, total_len=pl.total_len, nfrags=pl.nfrags,
                      desc=desc, buffer=bytearray(pl.total_len),
                      immediate=pl.immediate)
        if pl.total_len > desc.total_length:
            st.status = CompletionStatus.LENGTH_ERROR
            st.buffer = None
        return st

    def _unexpected(self, vi: VI, pl: DataFrag) -> _RxState | None:
        """No receive descriptor posted: DROP, BUFFER, or NAK-retry.

        Only the NAK path leaves ``expected_rx_seq`` alone — the sender
        will retransmit the same sequence number and it must then be
        accepted, not filtered as a duplicate."""
        if vi.reliability is not Reliability.UNRELIABLE:
            # reliable modes: the sender must retry until a descriptor shows up
            self.naks_sent += 1
            self.sim.process(self._nak_later(vi, pl.seq), name="nak")
            return None
        vi.expected_rx_seq = pl.seq + 1
        if self.choices.unexpected is UnexpectedPolicy.BUFFER:
            chk = self.sim.checker
            if chk is not None:
                chk.on_deliver(vi, pl.seq)
            return _RxState(seq=pl.seq, total_len=pl.total_len, nfrags=pl.nfrags,
                            desc=None, buffer=bytearray(pl.total_len),
                            immediate=pl.immediate, buffering=True)
        self.drops += 1
        return _RxState(seq=pl.seq, total_len=pl.total_len, nfrags=pl.nfrags,
                        desc=None, buffer=None)

    def _nak_later(self, vi: VI, seq: int) -> Op:
        yield self.sim.timeout(self.costs.ack_tx)
        yield from self._send_ack_now(vi, seq, "nak_retry")

    def _placement_pages(self, desc: Descriptor, offset: int, length: int) -> list[int]:
        """Pages touched when placing ``length`` bytes at message ``offset``."""
        if length == 0:
            return []
        pages: list[int] = []
        seen: set[int] = set()
        cursor = 0
        remaining_off = offset
        remaining_len = length
        for seg in desc.segments:
            if remaining_len <= 0:
                break
            if remaining_off >= seg.length:
                remaining_off -= seg.length
                continue
            start = seg.address + remaining_off
            take = min(seg.length - remaining_off, remaining_len)
            for p in page_span(start, take, self.node.mem.page_size):
                if p not in seen:
                    seen.add(p)
                    pages.append(p)
            remaining_len -= take
            remaining_off = 0
            cursor += take
        return pages

    # -- RDMA write -----------------------------------------------------------
    def _rx_rdma_write(self, vi: VI, pl: DataFrag) -> Op:
        c = self.costs
        assert pl.remote_addr is not None and pl.remote_handle is not None
        if pl.frag == 0:
            if self._duplicate(vi, pl):
                if pl.nfrags > 1:
                    self._rdma_skip[vi.vi_id] = pl.seq
                return
            self._rdma_skip.pop(vi.vi_id, None)
            vi.expected_rx_seq = pl.seq + 1
            chk = self.sim.checker
            if chk is not None:
                chk.on_deliver(vi, pl.seq)
        elif self._rdma_skip.get(vi.vi_id) == pl.seq:
            if pl.frag + 1 == pl.nfrags:
                del self._rdma_skip[vi.vi_id]
            return
        try:
            self.p.registry.check_rdma_target(
                pl.remote_addr + pl.offset, len(pl.data), pl.remote_handle,
                write=True,
            )
        except VipProtectionError:
            yield from self._send_ack(vi, pl.seq, "nak_prot")
            self.drops += 1
            return
        if self.choices.translation_agent is TranslationAgent.NIC:
            base = pl.remote_addr + pl.offset
            pages = list(page_span(base, max(len(pl.data), 1),
                                   self.node.mem.page_size))
            yield from self._translate_pages(pages)
        yield from self.nic.dma.transfer(len(pl.data))
        if pl.data:
            chk = self.sim.checker
            if chk is not None:
                chk.on_rdma_dma(self.p, pl.remote_addr + pl.offset,
                                len(pl.data), pl.remote_handle, write=True)
            self.node.mem.write(pl.remote_addr + pl.offset, pl.data)
        if pl.frag + 1 < pl.nfrags:
            return
        # last fragment of the RDMA write
        self.messages_received += 1
        if vi.reliability is not Reliability.UNRELIABLE:
            yield from self._send_ack(vi, pl.seq, "ack")
        if pl.immediate is not None:
            # immediate-data RDMA write consumes a receive descriptor
            desc = vi.recv_q.claim()
            if desc is not None:
                desc.control.immediate = pl.immediate
                yield from self._finish(vi.recv_q, desc,
                                        CompletionStatus.SUCCESS, pl.total_len)
            elif vi.reliability is Reliability.UNRELIABLE:
                self.drops += 1

    # -- RDMA read -------------------------------------------------------------
    def _rx_read_req(self, pl: RdmaReadReq) -> Op:
        """Target side of an RDMA read: stream the data back."""
        c = self.costs
        yield from self._ff_rx_gate()
        yield self.nic.recv_engine.request()
        try:
            yield self.sim.timeout(c.nic_rx_per_frag)
            vi = self.p.vis.get(pl.dst_vi)
            if vi is None or not vi.is_connected:
                self.drops += 1
                return
            try:
                self.p.registry.check_rdma_target(
                    pl.remote_addr, pl.length, pl.remote_handle, write=False
                )
            except VipProtectionError:
                yield from self._send_ack_now(vi, pl.read_id, "nak_read")
                return
        finally:
            self.nic.recv_engine.release()
        self.sim.process(self._stream_read_resp(vi, pl), name="read-resp")

    def _stream_read_resp(self, vi: VI, pl: RdmaReadReq) -> Op:
        c = self.costs
        chk = self.sim.checker
        if chk is not None:
            chk.on_rdma_dma(self.p, pl.remote_addr, pl.length,
                            pl.remote_handle, write=False)
        data = self.node.mem.read(pl.remote_addr, pl.length)
        sizes = fragment_sizes(len(data), self.mtu)
        yield self.nic.send_engine.request()
        try:
            if self.choices.translation_agent is TranslationAgent.NIC:
                pages = list(page_span(pl.remote_addr, max(pl.length, 1),
                                       self.node.mem.page_size))
                yield from self._translate_pages(pages)
            offset = 0
            for i, size in enumerate(sizes):
                frag = DataFrag(
                    src_vi=pl.dst_vi, dst_vi=pl.src_vi, seq=pl.read_id,
                    frag=i, nfrags=len(sizes), offset=offset,
                    total_len=len(data), data=data[offset : offset + size],
                    op="read_resp", read_id=pl.read_id,
                )
                yield from self.nic.dma.transfer(size)
                yield self.sim.timeout(c.nic_tx_per_frag)
                self._tx_packet(self._peer_node(vi), "via-data", size, frag)
                offset += size
        finally:
            self.nic.send_engine.release()

    def _rx_read_resp(self, pl: DataFrag) -> Op:
        assert pl.read_id is not None
        entry = self._pending_reads.get(pl.read_id)
        if entry is None:
            self.drops += 1
            return
        vi, desc, buf, received = entry
        if self.choices.translation_agent is TranslationAgent.NIC:
            pages = self._placement_pages(desc, pl.offset, len(pl.data))
            yield from self._translate_pages(pages)
        yield from self.nic.dma.transfer(len(pl.data))
        buf[pl.offset : pl.offset + len(pl.data)] = pl.data
        received += 1
        if received < pl.nfrags:
            self._pending_reads[pl.read_id] = (vi, desc, buf, received)
            return
        del self._pending_reads[pl.read_id]
        chk = self.sim.checker
        if chk is not None:
            chk.on_local_dma(self.p, vi, desc)
        scatter(self.node.mem, desc, bytes(buf))
        yield from self._finish(vi.send_q, desc,
                                CompletionStatus.SUCCESS, pl.total_len)

    # -- acknowledgements ----------------------------------------------------
    def _send_ack(self, vi: VI, seq: int, kind: str) -> Op:
        yield self.sim.timeout(self.costs.ack_tx)
        yield from self._send_ack_now(vi, seq, kind)

    def _send_ack_now(self, vi: VI, seq: int, kind: str) -> Op:
        assert vi.peer is not None
        payload = AckPayload(dst_vi=vi.peer[1], seq=seq, kind=kind)
        self._tx_packet(vi.peer[0], "via-ack", ACK_WIRE_BYTES, payload)
        return
        yield  # pragma: no cover - makes this a generator

    def _rx_ack(self, pl: AckPayload) -> Op:
        c = self.costs
        yield from self._ff_rx_gate()
        yield self.nic.recv_engine.request()
        try:
            yield self.sim.timeout(c.ack_rx)
        finally:
            self.nic.recv_engine.release()
        if pl.kind == "nak_read":
            # protection NAK for an RDMA read request (seq carries read_id)
            entry = self._pending_reads.pop(pl.seq, None)
            if entry is not None:
                vi, desc, _buf, _recv = entry
                yield from self._finish(vi.send_q, desc,
                                        CompletionStatus.PROTECTION_ERROR, 0)
            return
        state = self._unacked.get((pl.dst_vi, pl.seq))
        if state is None:
            return
        if pl.kind == "ack":
            state.acked = True
            del self._unacked[(pl.dst_vi, pl.seq)]
            yield from self._finish(state.vi.send_q, state.desc,
                                    CompletionStatus.SUCCESS,
                                    state.desc.total_length)
        elif pl.kind == "nak_retry":
            # a NAK is proof the peer is reachable, so it does not count
            # toward the catastrophic-failure budget: the receiver just
            # cannot accept this message yet (no descriptor posted, or an
            # earlier message still has a hole).  The RTO timer measures
            # sustained non-progress and remains the sole failure trigger.
            yield self.sim.timeout(c.rto / 4)  # retry backoff
            yield from self._resend(state)
        elif pl.kind == "nak_prot":
            state.acked = True
            del self._unacked[(pl.dst_vi, pl.seq)]
            yield from self._finish(state.vi.send_q, state.desc,
                                    CompletionStatus.PROTECTION_ERROR, 0)

    # -- BUFFER policy: deliver kernel-buffered messages at post time -----
    def pop_buffered(self, vi: VI) -> _BufferedMsg | None:
        msgs = self._buffered.get(vi.vi_id)
        if msgs:
            msg = msgs.pop(0)
            if not msgs:
                del self._buffered[vi.vi_id]
            return msg
        return None

    def has_buffered(self, vi: VI) -> bool:
        return bool(self._buffered.get(vi.vi_id))

    def deliver_buffered(self, vi: VI) -> Op:
        """Marry kernel-buffered unexpected messages with posted receives.

        Runs as its own process whenever either side (a buffered arrival
        or a fresh post) might have created a match; claims descriptors
        so concurrent deliveries and wire arrivals never collide."""
        while self.has_buffered(vi):
            desc = vi.recv_q.claim()
            if desc is None:
                return
            msg = self.pop_buffered(vi)
            assert msg is not None
            if msg.total_len > desc.total_length:
                yield from self._finish(vi.recv_q, desc,
                                        CompletionStatus.LENGTH_ERROR, 0)
            else:
                chk = self.sim.checker
                if chk is not None:
                    chk.on_local_dma(self.p, vi, desc)
                scatter(self.node.mem, desc, msg.data)
                desc.control.immediate = msg.immediate
                yield from self._finish(vi.recv_q, desc,
                                        CompletionStatus.SUCCESS, msg.total_len)
