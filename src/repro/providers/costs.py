"""Design-choice taxonomy and cost models for simulated VIA providers.

The taxonomy follows Banikazemi et al., *Comparison and Evaluation of
Design Choices for Implementing the Virtual Interface Architecture*
(CANPC 2000) — the paper's own reference [5] for the design space:

- who performs virtual→physical **translation** (host kernel vs NIC),
- where the **translation tables** live (host memory vs NIC memory),
- how the **doorbell** is implemented (MMIO store vs kernel trap),
- whether the **data path** is zero-copy DMA or staged through kernel
  buffers,
- how the NIC **dispatches** posted work (hardware-indexed doorbells vs
  firmware polling every open VI's queue).

:class:`CostModel` holds every timing constant, in microseconds.  These
constants are *calibration data*: chosen so the three concrete providers
land near the paper's measured magnitudes (Table 1, Figs. 1–7).  The
mechanisms that consume them are in :mod:`repro.providers.engine`; the
shapes of the benchmark curves come from the mechanisms, not from these
numbers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..via.constants import Reliability

__all__ = [
    "TranslationAgent",
    "TableLocation",
    "DoorbellKind",
    "DataPath",
    "DispatchKind",
    "UnexpectedPolicy",
    "DesignChoices",
    "CostModel",
]


class TranslationAgent(enum.Enum):
    """Who walks the translation table for each transfer."""

    HOST = "host"
    NIC = "nic"


class TableLocation(enum.Enum):
    """Where translation entries live (NIC-resident tables never miss)."""

    HOST_MEMORY = "host_memory"
    NIC_MEMORY = "nic_memory"


class DoorbellKind(enum.Enum):
    MMIO = "mmio"          # user-space store to a mapped NIC page
    SYSCALL = "syscall"    # kernel trap (software VIA emulation)


class DataPath(enum.Enum):
    ZERO_COPY = "zero_copy"  # NIC DMAs user buffers directly
    STAGED = "staged"        # host copies through kernel buffers


class DispatchKind(enum.Enum):
    DIRECT = "direct"   # doorbell indexes the work queue directly
    POLLED = "polled"   # firmware scans every open VI's queue round-robin


class UnexpectedPolicy(enum.Enum):
    """What happens to data arriving with no receive descriptor posted."""

    DROP = "drop"      # discard (unreliable semantics)
    BUFFER = "buffer"  # stage in kernel buffers, deliver at post time
    RETRY = "retry"    # NAK; the sender NIC retransmits


@dataclass(frozen=True)
class DesignChoices:
    """The architectural knobs distinguishing VIA implementations."""

    translation_agent: TranslationAgent
    table_location: TableLocation
    doorbell: DoorbellKind
    data_path: DataPath
    dispatch: DispatchKind
    unexpected: UnexpectedPolicy
    cq_in_hardware: bool
    supports_rdma_read: bool
    default_reliability: Reliability
    nic_tlb_entries: int = 64


@dataclass(frozen=True)
class CostModel:
    """Every provider timing constant, in microseconds (sizes in bytes)."""

    # -- non-data-transfer operations (Table 1) --------------------------
    vi_create: float
    vi_destroy: float
    cq_create: float
    cq_destroy: float
    conn_client: float          # client CPU share of connection setup
    conn_server: float          # server CPU share of connection setup
    conn_teardown_active: float
    conn_teardown_passive: float

    # -- memory registration (Figs. 1 & 2) --------------------------------
    reg_base: float
    reg_per_page: float
    dereg_base: float
    dereg_per_page: float

    # -- host-side data-transfer costs -------------------------------------
    post_cost: float            # build + enqueue a descriptor
    doorbell_cost: float        # ring (MMIO store or kernel trap)
    host_translation_per_page: float  # HOST translation agent only
    reap_cost: float            # each Done/Wait completion check
    recv_host_per_frag: float   # host kernel work per fragment (STAGED)
    blocking_wakeup: float      # charged handler time on BLOCK wakeups

    # -- NIC engine costs -----------------------------------------------------
    nic_dispatch_per_vi: float  # POLLED dispatch: scan cost per open VI
    nic_desc_fetch: float       # parse a descriptor (engine time)
    nic_per_segment: float      # extra parse per data segment beyond first
    nic_tx_per_frag: float      # engine occupancy per outgoing fragment
    nic_rx_per_frag: float      # engine occupancy per incoming fragment
    tlb_hit: float              # NIC translation, entry resident
    tlb_miss: float             # NIC translation, entry fetched from host
    completion_write: float     # status writeback to host memory
    cq_notify: float            # deposit a CQ entry (0 when hardware CQ)
    ack_tx: float               # generate an acknowledgement
    ack_rx: float               # absorb an acknowledgement

    #: uncharged interrupt latency preceding a BLOCK wakeup (the latency
    #: penalty of blocking is blocking_delay + blocking_wakeup; only the
    #: wakeup part shows up in getrusage)
    blocking_delay: float = 0.0

    # -- reliability machinery ---------------------------------------------
    rto: float = 1_000.0        # retransmission timeout
    max_retries: int = 8

    # -- connection-recovery machinery --------------------------------------
    conn_rto: float = 4_000.0   # handshake retransmission base timeout;
                                # must exceed conn_server + wire RTT of
                                # every provider or lossless handshakes
                                # would retransmit spuriously
    conn_max_retries: int = 6   # handshake retransmissions before giving up
    conn_backoff_cap: float = 8_000.0  # ceiling on the exponential backoff:
                                # keeps reconnect latency bounded after an
                                # error-recovery redial instead of letting
                                # the schedule balloon to 2**6 * conn_rto
    error_recovery: float = 5.0  # host-side VI reset after an async error

    # -- limits -------------------------------------------------------------
    max_transfer_size: int = 65536
    max_segments: int = 16
    max_outstanding: int = 1024  # per work queue
    desc_fetch_bytes: int = 64   # DMA size of a descriptor fetch
    tlb_entry_bytes: int = 32    # DMA size of a table-entry fetch

    def scaled(self, factor: float) -> "CostModel":
        """A uniformly faster/slower variant (for ablation studies)."""
        fields = {
            name: getattr(self, name) * factor
            for name in (
                "vi_create", "vi_destroy", "cq_create", "cq_destroy",
                "conn_client", "conn_server", "conn_teardown_active",
                "conn_teardown_passive", "reg_base", "reg_per_page",
                "dereg_base", "dereg_per_page", "post_cost", "doorbell_cost",
                "host_translation_per_page", "reap_cost",
                "recv_host_per_frag", "blocking_wakeup",
                "nic_dispatch_per_vi", "nic_desc_fetch", "nic_per_segment",
                "nic_tx_per_frag", "nic_rx_per_frag", "tlb_hit", "tlb_miss",
                "completion_write", "cq_notify", "ack_tx", "ack_rx",
            )
        }
        return replace(self, **fields)
