"""A tagged message-passing layer over one VIA connection.

This is the kind of "programming model layer" the paper's §3.3 is
written for: an MPI-flavoured library whose design decisions — eager
threshold, bounce-buffer pools, registration caching, credit-based flow
control — are exactly what VIBe's micro-benchmarks (registration cost,
buffer reuse, CQ overhead) are meant to inform.

Protocol (all control words are real bytes on the wire):

- **eager** (size <= eager threshold): header + payload in one VIA send
  into a pre-posted receive from a fixed descriptor pool;
- **rendezvous** (size > threshold): sender ships an RTS header; the
  receiver, once a matching ``recv`` supplies a destination, registers
  a rendezvous buffer, answers CTS (address + memory handle), and the
  sender RDMA-writes the payload with the match id as immediate data —
  the immediate consumes one pre-posted descriptor and signals FIN;
- **credits**: each eager-class message consumes one of the peer's
  pre-posted descriptors; the consumer returns credits in batches once
  half the pool is used.

A small registration cache (``reg_cache=True``) keeps rendezvous
buffers registered across messages — the optimisation the paper says
higher layers should derive from the memory-registration benchmark.
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Any, Generator

from ..sim import Event
from ..via.descriptor import Descriptor
from ..via.errors import VipError
from ..via.provider import NicHandle
from ..via.vi import VI

__all__ = ["MsgEndpoint", "ANY_TAG"]

ANY_TAG: int | None = None

_HDR = struct.Struct(">BIII")  # kind, tag, match_id, size
_CTS = struct.Struct(">BIIQI")  # kind, tag(unused), match_id, addr, handle

_K_EAGER = 1
_K_RTS = 2
_K_CTS = 3
_K_CREDIT = 4

Op = Generator[Event, Any, Any]


class _Rendezvous:
    __slots__ = ("tag", "match_id", "size", "buffer", "mh", "done")

    def __init__(self, tag: int, match_id: int, size: int) -> None:
        self.tag = tag
        self.match_id = match_id
        self.size = size
        self.buffer = None
        self.mh = None
        self.done = False


class MsgEndpoint:
    """One side of a tagged-message channel over a connected VI."""

    def __init__(self, handle: NicHandle, vi: VI, eager_size: int = 4096,
                 pool: int = 16, reg_cache: bool = True,
                 wait_mode: "WaitMode | None" = None) -> None:
        if eager_size < _CTS.size:
            raise ValueError(f"eager_size must be >= {_CTS.size}")
        if pool < 4:
            raise ValueError("descriptor pool must be >= 4")
        from ..via.constants import WaitMode

        self.handle = handle
        self.vi = vi
        self.eager_size = eager_size
        self.pool = pool
        self.reg_cache = reg_cache
        #: how this endpoint waits for completions.  POLL spin-waits
        #: (100 % CPU, lowest latency); endpoints shared with other
        #: processes on the same node (e.g. DSM service loops) must
        #: BLOCK so the single host CPU stays schedulable.
        self.wait_mode = wait_mode or WaitMode.POLL
        self._recv_bufs: list = []          # [(region, mh)]
        self._send_buf = None               # eager/bounce staging
        self._send_mh = None
        #: extra staging buffers for non-blocking sends (isend); sized
        #: like the paper's sender-pipeline-length knob (§3.2.5)
        self.send_pool = 4
        self._staging_free: list = []       # [(region, mh)]
        self._staging_by_desc: dict[int, tuple] = {}
        self._outstanding_sends = 0
        self._rdv_cache: dict[int, tuple] = {}  # rounded size -> (region, mh)
        self._inbox: deque[tuple[int, bytes]] = deque()
        self._pending_rts: deque[tuple[int, int, int]] = deque()  # tag, mid, size
        self._cts_waiting: dict[int, tuple[int, int]] = {}  # mid -> (addr, handle)
        self._rdv_recv: dict[int, _Rendezvous] = {}
        self._credits = pool
        self._pending_credit_return = 0
        self._next_match = 1
        self.stats = {"eager": 0, "rendezvous": 0, "credits_sent": 0,
                      "registrations": 0}

    # -- lifecycle -----------------------------------------------------------
    def setup(self) -> Op:
        """Register pools and pre-post the receive descriptors.

        May be called before the VI is connected (receives pre-post in
        any state), which is also the race-free order.
        """
        h = self.handle
        hdr_room = self.eager_size + _HDR.size
        for _ in range(self.pool):
            region = h.alloc(hdr_room)
            mh = yield from h.register_mem(region)
            self.stats["registrations"] += 1
            self._recv_bufs.append((region, mh))
            yield from self._post(region, mh)
        self._send_buf = h.alloc(hdr_room)
        self._send_mh = yield from h.register_mem(self._send_buf)
        self.stats["registrations"] += 1
        for _ in range(self.send_pool):
            region = h.alloc(hdr_room)
            mh = yield from h.register_mem(region)
            self.stats["registrations"] += 1
            self._staging_free.append((region, mh))

    def _post(self, region, mh) -> Op:
        segs = [self.handle.segment(region, mh)]
        desc = Descriptor.recv(segs)
        desc.extra_region = region  # type: ignore[attr-defined]
        yield from self.handle.post_recv(self.vi, desc)

    def close(self) -> Op:
        """Deregister everything (the VI itself is owned by the caller)."""
        h = self.handle
        for size, (region, mh) in list(self._rdv_cache.items()):
            yield from h.deregister_mem(mh)
        self._rdv_cache.clear()
        if self._send_mh is not None:
            yield from h.deregister_mem(self._send_mh)
            self._send_mh = None

    # -- send ------------------------------------------------------------------
    def send(self, tag: int, data: bytes) -> Op:
        """Send ``data`` under ``tag`` (blocks until safe to reuse)."""
        if tag is None or tag < 0:
            raise ValueError("tag must be a non-negative integer")
        if len(data) <= self.eager_size:
            yield from self._send_eager(tag, data)
        else:
            yield from self._send_rendezvous(tag, data)

    def _wait_credit(self) -> Op:
        while self._credits <= 0:
            yield from self._progress()

    def _send_eager(self, tag: int, data: bytes) -> Op:
        yield from self._wait_credit()
        h = self.handle
        header = _HDR.pack(_K_EAGER, tag, 0, len(data))
        # the library copies the user's bytes into its staging buffer,
        # exactly as an eager MPI implementation would
        yield from h.actor.copy(_HDR.size + len(data), "user")
        h.write(self._send_buf, header + data)
        segs = [h.segment(self._send_buf, self._send_mh, 0,
                          _HDR.size + len(data))]
        desc = Descriptor.send(segs)
        self._credits -= 1
        yield from h.post_send(self.vi, desc)
        yield from self._wait_send_complete(desc)
        self.stats["eager"] += 1

    # -- non-blocking sends -----------------------------------------------
    def isend(self, tag: int, data: bytes) -> Op:
        """Post an eager send without waiting for its completion.

        Returns once the message is handed to the provider; the staging
        buffer it occupies is recycled lazily as completions are reaped.
        Up to ``send_pool`` sends can be in flight — the MPI-layer
        analogue of the paper's sender-pipeline-length benchmark.  Call
        :meth:`flush_sends` before tearing the endpoint down.  Payloads
        above the eager threshold fall back to the synchronous
        rendezvous path (whose handshake cannot be pipelined here).
        """
        if tag is None or tag < 0:
            raise ValueError("tag must be a non-negative integer")
        if len(data) > self.eager_size:
            yield from self._send_rendezvous(tag, data)
            return
        yield from self._wait_credit()
        h = self.handle
        while not self._staging_free:
            yield from self._reap_one_send()
        region, mh = self._staging_free.pop()
        yield from h.actor.copy(_HDR.size + len(data), "user")
        h.write(region, _HDR.pack(_K_EAGER, tag, 0, len(data)) + data)
        segs = [h.segment(region, mh, 0, _HDR.size + len(data))]
        desc = Descriptor.send(segs)
        self._staging_by_desc[desc.desc_id] = (region, mh)
        self._credits -= 1
        yield from h.post_send(self.vi, desc)
        self._outstanding_sends += 1
        self.stats["eager"] += 1

    def _reap_one_send(self) -> Op:
        """Wait for the oldest in-flight send and recycle its staging."""
        desc = yield from self.handle.send_wait(self.vi, self.wait_mode)
        staging = self._staging_by_desc.pop(desc.desc_id, None)
        if staging is not None:
            self._staging_free.append(staging)
            self._outstanding_sends -= 1
        return desc

    def _wait_send_complete(self, desc: Descriptor) -> Op:
        """Drain send completions (recycling isend staging) until
        ``desc`` itself has completed — completions are FIFO, so a
        synchronous send may first reap older in-flight isends."""
        while not desc.is_complete:
            yield from self._reap_one_send()

    def flush_sends(self) -> Op:
        """Wait until every isend has completed."""
        while self._outstanding_sends:
            yield from self._reap_one_send()

    def _send_rendezvous(self, tag: int, data: bytes) -> Op:
        h = self.handle
        match_id = self._next_match
        self._next_match += 1
        # RTS
        yield from self._wait_credit()
        h.write(self._send_buf, _HDR.pack(_K_RTS, tag, match_id, len(data)))
        segs = [h.segment(self._send_buf, self._send_mh, 0, _HDR.size)]
        rts = Descriptor.send(segs)
        self._credits -= 1
        yield from h.post_send(self.vi, rts)
        yield from self._wait_send_complete(rts)
        # wait for CTS
        while match_id not in self._cts_waiting:
            yield from self._progress()
        raddr, rhandle = self._cts_waiting.pop(match_id)
        # stage + RDMA write with FIN immediate
        region, mh = yield from self._rdv_buffer(len(data))
        yield from h.actor.copy(len(data), "user")
        h.write(region, data)
        wsegs = [h.segment(region, mh, 0, len(data))]
        yield from self._wait_credit()          # the FIN consumes a descriptor
        self._credits -= 1
        desc = Descriptor.rdma_write(wsegs, raddr, rhandle, immediate=match_id)
        yield from h.post_send(self.vi, desc)
        yield from self._wait_send_complete(desc)
        if not self.reg_cache:
            yield from h.deregister_mem(mh)
        self.stats["rendezvous"] += 1

    def _rdv_buffer(self, size: int) -> Op:
        """A registered rendezvous buffer, cached by rounded size."""
        h = self.handle
        bucket = 1 << max(12, (size - 1).bit_length())
        if self.reg_cache and bucket in self._rdv_cache:
            return self._rdv_cache[bucket]
        region = h.alloc(bucket)
        mh = yield from h.register_mem(region, enable_rdma_write=True)
        self.stats["registrations"] += 1
        if self.reg_cache:
            self._rdv_cache[bucket] = (region, mh)
        return region, mh

    # -- receive ---------------------------------------------------------------
    def recv(self, tag: int | None = ANY_TAG) -> Op:
        """Receive the next message matching ``tag`` (None = any)."""
        while True:
            hit = self._match_inbox(tag)
            if hit is not None:
                return hit
            rts = self._match_rts(tag)
            if rts is not None:
                result = yield from self._recv_rendezvous(*rts)
                return result
            yield from self._progress()

    def _match_inbox(self, tag):
        for i, (mtag, data) in enumerate(self._inbox):
            if tag is ANY_TAG or mtag == tag:
                del self._inbox[i]
                return (mtag, data)
        return None

    def _match_rts(self, tag):
        for i, (mtag, mid, size) in enumerate(self._pending_rts):
            if tag is ANY_TAG or mtag == tag:
                del self._pending_rts[i]
                return (mtag, mid, size)
        return None

    def _recv_rendezvous(self, tag: int, match_id: int, size: int) -> Op:
        h = self.handle
        region, mh = yield from self._rdv_buffer(size)
        rdv = _Rendezvous(tag, match_id, size)
        rdv.buffer, rdv.mh = region, mh
        self._rdv_recv[match_id] = rdv
        # CTS
        yield from self._wait_credit()
        h.write(self._send_buf,
                _CTS.pack(_K_CTS, 0, match_id, region.base, mh.handle_id))
        segs = [h.segment(self._send_buf, self._send_mh, 0, _CTS.size)]
        cts = Descriptor.send(segs)
        self._credits -= 1
        yield from h.post_send(self.vi, cts)
        yield from self._wait_send_complete(cts)
        # FIN arrives as an immediate-data completion
        while not rdv.done:
            yield from self._progress()
        del self._rdv_recv[match_id]
        data = h.read(region, size)
        yield from h.actor.copy(size, "user")
        if not self.reg_cache:
            yield from h.deregister_mem(mh)
        return (tag, data)

    # -- progress engine ----------------------------------------------------
    def _progress(self) -> Op:
        """Reap one receive completion and dispatch it."""
        h = self.handle
        desc = yield from h.recv_wait(self.vi, self.wait_mode)
        region = desc.extra_region  # type: ignore[attr-defined]
        if desc.control.immediate is not None:
            # rendezvous FIN
            rdv = self._rdv_recv.get(desc.control.immediate)
            if rdv is None:
                raise VipError(
                    f"FIN for unknown rendezvous {desc.control.immediate}"
                )
            rdv.done = True
        else:
            raw = h.read(region, desc.control.length)
            kind = raw[0]
            if kind == _K_CTS:
                _k, _t, mid, addr, hid = _CTS.unpack(raw[:_CTS.size])
                self._cts_waiting[mid] = (addr, hid)
            else:
                _k, tag, mid, size = _HDR.unpack(raw[:_HDR.size])
                if kind == _K_EAGER:
                    self._inbox.append((tag, raw[_HDR.size:_HDR.size + size]))
                elif kind == _K_RTS:
                    self._pending_rts.append((tag, mid, size))
                elif kind == _K_CREDIT:
                    self._credits += size
                else:
                    raise VipError(f"unknown message kind {kind}")
        # recycle the descriptor and return credits in batches
        mh = next(m for r, m in self._recv_bufs if r is region)
        desc.reset()
        yield from self._post(region, mh)
        self._pending_credit_return += 1
        if (self._pending_credit_return >= self.pool // 2
                and self._credits > 0):
            yield from self._send_credits()

    def _send_credits(self) -> Op:
        h = self.handle
        n = self._pending_credit_return
        self._pending_credit_return = 0
        h.write(self._send_buf, _HDR.pack(_K_CREDIT, 0, 0, n))
        segs = [h.segment(self._send_buf, self._send_mh, 0, _HDR.size)]
        desc = Descriptor.send(segs)
        self._credits -= 1
        yield from h.post_send(self.vi, desc)
        yield from self._wait_send_complete(desc)
        self.stats["credits_sent"] += 1
