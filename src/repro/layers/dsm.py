"""Page-based software distributed shared memory over VIA.

The paper lists "software distributed shared memory" among the
programming models VIA serves (§3.3) and cites the authors' own
TreadMarks-over-VIA port [7].  This module implements a home-based,
single-writer / multiple-reader invalidation protocol — the core of any
such system — entirely on the repo's VIA message layer:

- every page has a **home** node (``page % nnodes``) holding the
  directory entry (current writer, reader copyset) and, absent a
  writer, the authoritative copy;
- a **read miss** fetches the page from its home (which first recalls
  it from a remote writer, if any);
- a **write miss** obtains exclusive ownership: the home recalls the
  current writer, invalidates every reader, then grants;
- protocol traffic is split over two channel classes so it cannot
  deadlock: *request* channels (fetch/own — the home may issue
  sub-requests while serving) and *control* channels (recall /
  invalidate — pure leaf operations a node's control loop answers
  without ever blocking on a third party).

Coherence granularity is the page; within a node, a per-page lock keeps
the application and the control loop from racing between yields.  The
result is sequentially consistent per page.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Generator

from ..sim import Event, Resource
from ..via.provider import NicHandle
from .msg import MsgEndpoint

__all__ = ["PageState", "DsmNode", "DsmStats", "connect_mesh"]

Op = Generator[Event, Any, Any]

_REQ = 0xD50
_REP = 0xD51
_CTL = 0xD52
_CTL_ACK = 0xD53

_OP_FETCH = 1      # request channel: read copy
_OP_OWN = 2        # request channel: exclusive ownership
_OP_RECALL = 3     # control channel: writer returns + downgrades to READ
_OP_RECALL_INV = 4 # control channel: writer returns + invalidates
_OP_INVAL = 5      # control channel: reader drops its copy

_HDR = struct.Struct(">BI")   # op, page


class PageState:
    INVALID = "invalid"
    READ = "read"
    WRITE = "write"


@dataclass
class DsmStats:
    fetches: int = 0            # read misses served remotely
    ownership_transfers: int = 0
    recalls: int = 0            # pages pulled back from writers
    invalidations: int = 0
    local_hits: int = 0


@dataclass
class _Directory:
    """Home-side record for one page."""

    writer: int | None = None
    readers: set[int] = field(default_factory=set)


class DsmNode:
    """One participant in a DSM region of ``npages`` pages.

    Construction wires nothing; call :meth:`setup` (a timed generator)
    once the channel endpoints exist — see :func:`connect_mesh` for the
    standard wiring.
    """

    def __init__(self, handle: NicHandle, index: int, nnodes: int,
                 npages: int, page_size: int = 4096) -> None:
        if not 0 <= index < nnodes:
            raise ValueError("node index out of range")
        if nnodes < 2:
            raise ValueError("a DSM needs at least two nodes")
        self.handle = handle
        self.sim = handle.sim
        self.index = index
        self.nnodes = nnodes
        self.npages = npages
        self.page_size = page_size
        self.stats = DsmStats()
        # local cache of the whole region
        self._cache = handle.alloc(npages * page_size)
        self._state = [PageState.INVALID] * npages
        self._locks = [Resource(self.sim, 1) for _ in range(npages)]
        # home-side directory for pages this node homes; directory
        # operations for one page are serialised by a dedicated lock so
        # concurrent request loops (and the local application) cannot
        # interleave a page's protocol transitions
        self._dir: dict[int, _Directory] = {
            p: _Directory() for p in range(npages) if self.home(p) == index
        }
        self._dir_locks: dict[int, Resource] = {
            p: Resource(self.sim, 1) for p in self._dir
        }
        # peer -> endpoints (filled by the mesh wiring)
        self.req_out: dict[int, MsgEndpoint] = {}
        self.ctl_out: dict[int, MsgEndpoint] = {}
        self._ctl_mutex: dict[int, Resource] = {}
        self._serving = True

    # -- topology ---------------------------------------------------------
    def home(self, page: int) -> int:
        return page % self.nnodes

    def attach(self, peer: int, req_out: MsgEndpoint,
               ctl_out: MsgEndpoint) -> None:
        self.req_out[peer] = req_out
        self.ctl_out[peer] = ctl_out
        self._ctl_mutex[peer] = Resource(self.sim, 1)

    def start_serving(self, peer: int, req_in: MsgEndpoint,
                      ctl_in: MsgEndpoint) -> None:
        """Spawn the request/control service loops for one peer."""
        self.sim.process(self._request_loop(peer, req_in),
                         name=f"dsm{self.index}-req{peer}")
        self.sim.process(self._control_loop(peer, ctl_in),
                         name=f"dsm{self.index}-ctl{peer}")

    # Home pages start resident at the home.
    def initialise_home_pages(self) -> None:
        for page in self._dir:
            self._state[page] = PageState.WRITE
            self._dir[page].writer = self.index

    # -- public API -----------------------------------------------------------
    def read(self, offset: int, length: int) -> Op:
        """Coherent read of ``[offset, offset+length)``."""
        self._check_range(offset, length)
        out = bytearray()
        for page, lo, hi in self._page_spans(offset, length):
            yield from self._ensure_readable(page)
            out += self.handle.read(self._cache, hi - lo,
                                    page * self.page_size + lo)
        return bytes(out)

    def write(self, offset: int, data: bytes) -> Op:
        """Coherent write of ``data`` at ``offset``."""
        self._check_range(offset, len(data))
        cursor = 0
        for page, lo, hi in self._page_spans(offset, len(data)):
            chunk = data[cursor:cursor + (hi - lo)]
            cursor += hi - lo
            while True:
                yield self._locks[page].request()
                if self._state[page] == PageState.WRITE:
                    self.handle.write(self._cache, chunk,
                                      page * self.page_size + lo)
                    self._locks[page].release()
                    break
                self._locks[page].release()
                yield from self._acquire_ownership(page)

    def page_state(self, page: int) -> str:
        return self._state[page]

    # -- misc helpers ---------------------------------------------------------
    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 \
                or offset + length > self.npages * self.page_size:
            raise ValueError("access outside the shared region")

    def _page_spans(self, offset: int, length: int):
        """Yield (page, start-in-page, end-in-page) covering the range."""
        end = offset + length
        page = offset // self.page_size
        while offset < end:
            page_end = (page + 1) * self.page_size
            hi = min(end, page_end)
            yield page, offset - page * self.page_size, hi - page * self.page_size
            offset = hi
            page += 1

    def _page_bytes(self, page: int) -> bytes:
        return self.handle.read(self._cache, self.page_size,
                                page * self.page_size)

    def _install(self, page: int, data: bytes, state: str) -> Op:
        yield self._locks[page].request()
        self.handle.write(self._cache, data, page * self.page_size)
        self._state[page] = state
        self._locks[page].release()

    # -- miss handling ---------------------------------------------------------
    def _ensure_readable(self, page: int) -> Op:
        if self._state[page] != PageState.INVALID:
            self.stats.local_hits += 1
            return
        home = self.home(page)
        if home == self.index:
            # home read miss: recall from the remote writer
            yield from self._home_localise(page, want_write=False)
            return
        msg = self.req_out[home]
        yield from msg.send(_REQ, _HDR.pack(_OP_FETCH, page))
        _tag, data = yield from msg.recv(_REP)
        self.stats.fetches += 1
        yield from self._install(page, data, PageState.READ)

    def _acquire_ownership(self, page: int) -> Op:
        home = self.home(page)
        if home == self.index:
            yield from self._home_localise(page, want_write=True)
            return
        msg = self.req_out[home]
        yield from msg.send(_REQ, _HDR.pack(_OP_OWN, page))
        _tag, data = yield from msg.recv(_REP)
        self.stats.ownership_transfers += 1
        yield from self._install(page, data, PageState.WRITE)

    # -- home-side logic ----------------------------------------------------------
    def _home_localise(self, page: int, want_write: bool) -> Op:
        """The home itself faults on a page it homes."""
        yield self._dir_locks[page].request()
        try:
            yield from self._home_localise_locked(page, want_write)
        finally:
            self._dir_locks[page].release()

    def _home_localise_locked(self, page: int, want_write: bool) -> Op:
        entry = self._dir[page]
        if entry.writer is not None and entry.writer != self.index:
            data = yield from self._ctl_roundtrip(
                entry.writer, _OP_RECALL_INV if want_write else _OP_RECALL,
                page)
            state = PageState.WRITE if want_write else PageState.READ
            yield from self._install(page, data, state)
            if want_write:
                entry.writer = self.index
                entry.readers.clear()
            else:
                entry.readers.add(entry.writer)
                entry.writer = None
                self._state[page] = PageState.READ
            self.stats.recalls += 1
            return
        if want_write:
            for reader in sorted(entry.readers - {self.index}):
                yield from self._ctl_roundtrip(reader, _OP_INVAL, page)
                self.stats.invalidations += 1
            entry.readers.clear()
            entry.writer = self.index
            yield self._locks[page].request()
            self._state[page] = PageState.WRITE
            self._locks[page].release()
        else:
            if self._state[page] == PageState.INVALID:
                self._state[page] = PageState.READ
            entry.readers.add(self.index)

    def _serve_request(self, peer: int, op: int, page: int) -> Op:
        """Home-side handling of FETCH/OWN from ``peer``."""
        yield self._dir_locks[page].request()
        try:
            data = yield from self._serve_request_locked(peer, op, page)
        finally:
            self._dir_locks[page].release()
        return data

    def _serve_request_locked(self, peer: int, op: int, page: int) -> Op:
        entry = self._dir[page]
        if op == _OP_FETCH:
            if entry.writer is not None and entry.writer != peer:
                if entry.writer == self.index:
                    yield from self._downgrade_self(page)
                else:
                    data = yield from self._ctl_roundtrip(
                        entry.writer, _OP_RECALL, page)
                    yield from self._install(page, data, PageState.INVALID)
                    entry.readers.add(entry.writer)
                self.stats.recalls += 1
                entry.writer = None
            entry.readers.add(peer)
            return self._page_bytes(page)
        assert op == _OP_OWN
        if entry.writer is not None and entry.writer != peer:
            if entry.writer == self.index:
                yield from self._surrender_self(page)
            else:
                data = yield from self._ctl_roundtrip(
                    entry.writer, _OP_RECALL_INV, page)
                yield from self._install(page, data, PageState.INVALID)
            self.stats.recalls += 1
            entry.writer = None
        for reader in sorted(entry.readers - {peer}):
            if reader == self.index:
                yield from self._invalidate_self(page)
            else:
                yield from self._ctl_roundtrip(reader, _OP_INVAL, page)
            self.stats.invalidations += 1
        entry.readers.clear()
        entry.writer = peer
        data = self._page_bytes(page)
        # the home's own copy is stale the moment the grant leaves
        yield self._locks[page].request()
        self._state[page] = PageState.INVALID
        self._locks[page].release()
        return data

    def _downgrade_self(self, page: int) -> Op:
        yield self._locks[page].request()
        self._state[page] = PageState.READ
        self._locks[page].release()
        self._dir[page].readers.add(self.index)

    def _surrender_self(self, page: int) -> Op:
        yield self._locks[page].request()
        self._state[page] = PageState.INVALID
        self._locks[page].release()

    def _invalidate_self(self, page: int) -> Op:
        yield self._locks[page].request()
        self._state[page] = PageState.INVALID
        self._locks[page].release()

    # -- wire plumbing ---------------------------------------------------------
    def _ctl_roundtrip(self, peer: int, op: int, page: int) -> Op:
        """Issue a leaf control operation and await its ack."""
        mutex = self._ctl_mutex[peer]
        msg = self.ctl_out[peer]
        yield mutex.request()
        try:
            yield from msg.send(_CTL, _HDR.pack(op, page))
            _tag, data = yield from msg.recv(_CTL_ACK)
        finally:
            mutex.release()
        return data

    def _request_loop(self, peer: int, req_in: MsgEndpoint) -> Op:
        while self._serving:
            _tag, raw = yield from req_in.recv(_REQ)
            op, page = _HDR.unpack(raw[:_HDR.size])
            data = yield from self._serve_request(peer, op, page)
            yield from req_in.send(_REP, data)

    def _control_loop(self, peer: int, ctl_in: MsgEndpoint) -> Op:
        while self._serving:
            _tag, raw = yield from ctl_in.recv(_CTL)
            op, page = _HDR.unpack(raw[:_HDR.size])
            if op == _OP_INVAL:
                yield self._locks[page].request()
                self._state[page] = PageState.INVALID
                self._locks[page].release()
                yield from ctl_in.send(_CTL_ACK, b"")
                continue
            # RECALL variants: wait out the grant/recall overtake race —
            # the grant may still be in flight on the request channel
            while True:
                yield self._locks[page].request()
                if self._state[page] == PageState.WRITE:
                    break
                self._locks[page].release()
                yield self.sim.timeout(1.0)
            data = self._page_bytes(page)
            self._state[page] = (PageState.INVALID
                                 if op == _OP_RECALL_INV else PageState.READ)
            self._locks[page].release()
            yield from ctl_in.send(_CTL_ACK, data)


# ---------------------------------------------------------------------------
# standard wiring
# ---------------------------------------------------------------------------

def connect_mesh(tb, node_names: list[str], npages: int,
                 page_size: int = 4096, eager_size: int | None = None):
    """Wire a full DSM mesh; returns one setup generator per node.

    Each ordered pair of nodes gets a *request* channel and a *control*
    channel (the deadlock-freedom split).  Every returned generator
    yields its :class:`DsmNode` once all its channels are connected.
    """
    n = len(node_names)
    eager = eager_size or (page_size + 64)

    def disc(kind: int, i: int, j: int) -> int:
        return 10_000 + kind * 4096 + i * 64 + j

    def node_setup(i: int):
        h = tb.open(node_names[i], f"dsm{i}")
        node = DsmNode(h, i, n, npages, page_size)
        mh = yield from h.register_mem(node._cache)  # pin the region
        node._cache_mh = mh

        inbound = {}

        from ..via.constants import WaitMode

        def acceptor(kind: int, j: int):
            vi = yield from h.create_vi()
            # BLOCK: several processes share each node's CPU; spinning
            # would starve the service loops (see MsgEndpoint.wait_mode)
            msg = MsgEndpoint(h, vi, eager_size=eager, pool=8,
                              wait_mode=WaitMode.BLOCK)
            yield from msg.setup()
            req = yield from h.connect_wait(disc(kind, j, i))
            yield from h.accept(req, vi)
            inbound[(kind, j)] = msg

        for j in range(n):
            if j == i:
                continue
            tb.spawn(acceptor(0, j), f"acc-req-{i}-{j}")
            tb.spawn(acceptor(1, j), f"acc-ctl-{i}-{j}")

        outbound = {}
        for j in range(n):
            if j == i:
                continue
            for kind in (0, 1):
                vi = yield from h.create_vi()
                msg = MsgEndpoint(h, vi, eager_size=eager, pool=8,
                                  wait_mode=WaitMode.BLOCK)
                yield from msg.setup()
                yield from h.connect(vi, node_names[j], disc(kind, i, j))
                outbound[(kind, j)] = msg

        # wait until all inbound channels are accepted
        while len(inbound) < 2 * (n - 1):
            yield tb.sim.timeout(5.0)

        for j in range(n):
            if j == i:
                continue
            node.attach(j, req_out=outbound[(0, j)], ctl_out=outbound[(1, j)])
            node.start_serving(j, req_in=inbound[(0, j)],
                               ctl_in=inbound[(1, j)])
        node.initialise_home_pages()
        return node

    return [node_setup(i) for i in range(n)]
