"""A one-sided get/put layer (the paper's §3.3 "Get/Put programming
model").

The local side *exposes* a registered window; the remote side receives
a :class:`RemoteWindow` token (address + memory handle, shipped over
the message layer) and then:

- ``put`` — always one-sided: an RDMA write into the window;
- ``get`` — one-sided RDMA read where the provider supports it,
  otherwise a request/reply emulation served by the window owner's
  ``serve`` loop (the fallback real Get/Put libraries used on RDMA-
  write-only VIA hardware).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Generator

from ..sim import Event
from ..via.descriptor import Descriptor
from ..via.provider import NicHandle
from ..via.vi import VI
from .msg import MsgEndpoint

__all__ = ["RemoteWindow", "GetPut"]

Op = Generator[Event, Any, Any]

_TAG_WINDOW = 0x71
_TAG_GETREQ = 0x72
_TAG_GETREP = 0x73
_TAG_STOP = 0x74

_WIN = struct.Struct(">QII")   # base address, handle id, length
_REQ = struct.Struct(">II")    # offset, length


@dataclass(frozen=True)
class RemoteWindow:
    """A peer's exposed region, addressable by offset."""

    base: int
    handle_id: int
    length: int


class GetPut:
    """One-sided operations between two connected endpoints."""

    def __init__(self, handle: NicHandle, vi: VI, msg: MsgEndpoint) -> None:
        self.handle = handle
        self.vi = vi
        self.msg = msg
        self._window = None        # locally exposed (region, mh)
        self._staging = None
        self._staging_mh = None

    # -- window management -------------------------------------------------
    def expose(self, length: int) -> Op:
        """Register a local window and publish it to the peer."""
        h = self.handle
        region = h.alloc(length)
        mh = yield from h.register_mem(region, enable_rdma_write=True,
                                       enable_rdma_read=True)
        self._window = (region, mh)
        yield from self.msg.send(
            _TAG_WINDOW, _WIN.pack(region.base, mh.handle_id, length)
        )
        return region

    def attach(self) -> Op:
        """Receive the peer's window token."""
        _tag, data = yield from self.msg.recv(_TAG_WINDOW)
        base, handle_id, length = _WIN.unpack(data)
        return RemoteWindow(base, handle_id, length)

    def _stage(self, size: int) -> Op:
        h = self.handle
        if self._staging is None or self._staging.length < size:
            if self._staging_mh is not None:
                yield from h.deregister_mem(self._staging_mh)
            self._staging = h.alloc(max(size, 4096))
            self._staging_mh = yield from h.register_mem(self._staging)
        return self._staging, self._staging_mh

    # -- one-sided operations -------------------------------------------------
    def put(self, window: RemoteWindow, offset: int, data: bytes) -> Op:
        """RDMA-write ``data`` at ``offset`` into the peer's window."""
        if offset < 0 or offset + len(data) > window.length:
            raise ValueError("put outside the remote window")
        h = self.handle
        region, mh = yield from self._stage(len(data))
        yield from h.actor.copy(len(data), "user")
        h.write(region, data)
        segs = [h.segment(region, mh, 0, len(data))]
        desc = Descriptor.rdma_write(segs, window.base + offset,
                                     window.handle_id)
        yield from h.post_send(self.vi, desc)
        yield from h.send_wait(self.vi)

    def get(self, window: RemoteWindow, offset: int, length: int) -> Op:
        """Read ``length`` bytes at ``offset`` from the peer's window."""
        if offset < 0 or offset + length > window.length:
            raise ValueError("get outside the remote window")
        h = self.handle
        if self.handle.provider.supports_rdma_read:
            region, mh = yield from self._stage(length)
            segs = [h.segment(region, mh, 0, length)]
            desc = Descriptor.rdma_read(segs, window.base + offset,
                                        window.handle_id)
            yield from h.post_send(self.vi, desc)
            yield from h.send_wait(self.vi)
            return h.read(region, length)
        # two-sided emulation: ask the window owner's serve() loop
        yield from self.msg.send(_TAG_GETREQ, _REQ.pack(offset, length))
        _tag, data = yield from self.msg.recv(_TAG_GETREP)
        return data

    # -- servicing (only needed for the two-sided get fallback) ----------
    def serve(self) -> Op:
        """Answer the peer's emulated gets until told to stop."""
        if self._window is None:
            raise RuntimeError("serve() requires an exposed window")
        region, _mh = self._window
        h = self.handle
        while True:
            tag, data = yield from self.msg.recv()
            if tag == _TAG_STOP:
                return
            if tag != _TAG_GETREQ:
                raise RuntimeError(f"unexpected tag {tag:#x} in serve()")
            offset, length = _REQ.unpack(data)
            chunk = h.read(region, length, offset)
            yield from self.msg.send(_TAG_GETREP, chunk)

    def stop_server(self) -> Op:
        yield from self.msg.send(_TAG_STOP, b"")
