"""A synchronous RPC layer over VIA (the paper's client-server model).

The Fig. 7 micro-benchmark approximates exactly this: fixed-size
requests, variable-size replies, one transaction outstanding per VI.
The layer adds method dispatch and framing on top of the raw pattern so
the examples can run realistic request/reply services.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Generator

from ..sim import Event
from .msg import MsgEndpoint

__all__ = ["RpcServer", "RpcClient", "RpcError"]

Op = Generator[Event, Any, Any]

_TAG_REQ = 0x9001
_TAG_REP = 0x9002
_CALL = struct.Struct(">HI")   # method index, payload length

_STATUS_OK = 0
_STATUS_NO_METHOD = 1
_STATUS_EXCEPTION = 2


class RpcError(Exception):
    """The server failed to execute the call."""


class RpcServer:
    """Serves registered methods over one connection."""

    def __init__(self, msg: MsgEndpoint) -> None:
        self.msg = msg
        self._methods: list[Callable[[bytes], bytes]] = []
        self._names: dict[str, int] = {}
        self.calls_served = 0

    def register(self, name: str, fn: Callable[[bytes], bytes]) -> int:
        """Register a handler; returns its method index."""
        if name in self._names:
            raise ValueError(f"method {name!r} already registered")
        self._names[name] = len(self._methods)
        self._methods.append(fn)
        return self._names[name]

    def method_index(self, name: str) -> int:
        return self._names[name]

    def serve(self, max_calls: int | None = None) -> Op:
        """Answer calls until ``max_calls`` served (None = forever)."""
        served = 0
        while max_calls is None or served < max_calls:
            _tag, raw = yield from self.msg.recv(_TAG_REQ)
            index, length = _CALL.unpack(raw[:_CALL.size])
            payload = raw[_CALL.size:_CALL.size + length]
            if index >= len(self._methods):
                reply = bytes([_STATUS_NO_METHOD])
            else:
                try:
                    reply = bytes([_STATUS_OK]) + self._methods[index](payload)
                except Exception as exc:  # application handler failed
                    reply = bytes([_STATUS_EXCEPTION]) + str(exc).encode()
            yield from self.msg.send(_TAG_REP, reply)
            served += 1
            self.calls_served += 1


class RpcClient:
    """Issues synchronous calls (one outstanding per client)."""

    def __init__(self, msg: MsgEndpoint) -> None:
        self.msg = msg
        self.calls_made = 0

    def call(self, method_index: int, payload: bytes = b"") -> Op:
        """Invoke a method; returns the reply payload bytes."""
        raw = _CALL.pack(method_index, len(payload)) + payload
        yield from self.msg.send(_TAG_REQ, raw)
        _tag, reply = yield from self.msg.recv(_TAG_REP)
        self.calls_made += 1
        status = reply[0]
        if status == _STATUS_NO_METHOD:
            raise RpcError(f"no such method index {method_index}")
        if status == _STATUS_EXCEPTION:
            raise RpcError(f"remote handler failed: {reply[1:].decode()}")
        return reply[1:]
