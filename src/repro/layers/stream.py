"""A sockets-like byte stream over the message layer.

The paper cites *High Performance Sockets and RPC over VI Architecture*
[17] as a canonical programming-model layer; this is that shape: an
ordered byte stream with library-side buffering, built on
:class:`~repro.layers.msg.MsgEndpoint` framing.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sim import Event
from .msg import MsgEndpoint

__all__ = ["ViaStream"]

_TAG_DATA = 0x5DA7A

Op = Generator[Event, Any, Any]


class ViaStream:
    """One direction-agnostic stream endpoint over a connected VI."""

    def __init__(self, msg: MsgEndpoint, chunk: int = 16384) -> None:
        if chunk < 1:
            raise ValueError("chunk must be positive")
        self.msg = msg
        self.chunk = chunk
        self._rxbuf = bytearray()
        self.bytes_sent = 0
        self.bytes_received = 0

    def write(self, data: bytes) -> Op:
        """Send all of ``data`` (fragments into stream chunks).

        Chunks go out through the message layer's non-blocking send
        pool, so consecutive chunks pipeline on the wire — the same
        async send queue a sockets-over-VIA implementation keeps.  The
        final flush makes write() safe-to-reuse on return.
        """
        view = memoryview(bytes(data))
        for off in range(0, len(view), self.chunk):
            piece = bytes(view[off : off + self.chunk])
            yield from self.msg.isend(_TAG_DATA, piece)
            self.bytes_sent += len(piece)
        yield from self.msg.flush_sends()

    def read(self, n: int) -> Op:
        """Receive exactly ``n`` bytes (blocking)."""
        if n < 0:
            raise ValueError("cannot read a negative byte count")
        while len(self._rxbuf) < n:
            _tag, data = yield from self.msg.recv(_TAG_DATA)
            self._rxbuf.extend(data)
            self.bytes_received += len(data)
        out = bytes(self._rxbuf[:n])
        del self._rxbuf[:n]
        return out

    @property
    def buffered(self) -> int:
        return len(self._rxbuf)
