"""Collective operations over the VIA message layer.

The distributed-memory programming model the paper plans benchmarks for
(§5) is MPI-shaped: beyond point-to-point sends it needs collectives.
This module implements the three classic building blocks with their
textbook algorithms over :class:`~repro.layers.msg.MsgEndpoint` meshes:

- **barrier** — dissemination: ⌈log₂ n⌉ rounds, in round k each rank
  signals ``(rank + 2^k) mod n`` and waits for ``(rank - 2^k) mod n``;
- **broadcast** — binomial tree rooted anywhere;
- **allreduce** — recursive doubling for powers of two, with a
  fold-in/fold-out step for the remainder ranks.

Every collective is ⌈log₂ n⌉ point-to-point latencies deep, so the
provider's VIBe small-message latency directly sets collective cost —
measurable with :func:`repro.vibe.progmodel_msg` machinery.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from ..sim import Event
from ..via.constants import WaitMode
from .msg import MsgEndpoint

__all__ = ["CommGroup", "connect_group"]

Op = Generator[Event, Any, Any]

_TAG_BARRIER = 0xC0
_TAG_BCAST = 0xC1
_TAG_REDUCE = 0xC2


class CommGroup:
    """One rank's view of a fully-connected communicator."""

    def __init__(self, rank: int, size: int,
                 peers: dict[int, MsgEndpoint]) -> None:
        if not 0 <= rank < size:
            raise ValueError("rank out of range")
        if size < 2:
            raise ValueError("a communicator needs at least two ranks")
        if set(peers) != set(range(size)) - {rank}:
            raise ValueError("need an endpoint for every other rank")
        self.rank = rank
        self.size = size
        self.peers = peers
        self._epoch = {"barrier": 0, "bcast": 0, "reduce": 0}

    # -- helpers -----------------------------------------------------------
    def _tagged(self, base: int, kind: str) -> int:
        """Collectives on the same channel must not cross epochs."""
        tag = (base << 16) | (self._epoch[kind] & 0xFFFF)
        return tag

    def send(self, peer: int, tag: int, data: bytes) -> Op:
        yield from self.peers[peer].send(tag, data)

    def recv(self, peer: int, tag: int) -> Op:
        _tag, data = yield from self.peers[peer].recv(tag)
        return data

    # -- barrier ----------------------------------------------------------
    def barrier(self) -> Op:
        """Dissemination barrier: no rank leaves before all entered."""
        tag = self._tagged(_TAG_BARRIER, "barrier")
        self._epoch["barrier"] += 1
        distance = 1
        while distance < self.size:
            to = (self.rank + distance) % self.size
            frm = (self.rank - distance) % self.size
            yield from self.send(to, tag, b"")
            yield from self.recv(frm, tag)
            distance *= 2

    # -- broadcast -----------------------------------------------------------
    def bcast(self, data: bytes | None, root: int = 0) -> Op:
        """Binomial-tree broadcast; returns the payload on every rank."""
        if not 0 <= root < self.size:
            raise ValueError("root out of range")
        # validate arguments BEFORE consuming an epoch: a raised call
        # must leave the group's collective counters untouched, or the
        # next collective would disagree with the other ranks' tags
        vrank = (self.rank - root) % self.size
        if vrank == 0 and data is None:
            raise ValueError("root must supply the payload")
        tag = self._tagged(_TAG_BCAST, "bcast")
        self._epoch["bcast"] += 1
        if vrank == 0:
            # the root's subtree spans the whole (virtual) group
            span = 1
            while span < self.size:
                span *= 2
        else:
            # receive from the parent: clear the lowest set bit
            parent = vrank & (vrank - 1)
            src = (parent + root) % self.size
            data = yield from self.recv(src, tag)
            span = vrank & -vrank        # my subtree is [vrank, vrank+span)
        # forward to children vrank+span/2, vrank+span/4, ..., vrank+1
        step = span >> 1
        while step >= 1:
            child = vrank + step
            if child < self.size:
                dst = (child + root) % self.size
                yield from self.send(dst, tag, data)
            step >>= 1
        return data

    # -- allreduce -------------------------------------------------------------
    def allreduce(self, value: bytes,
                  op: Callable[[bytes, bytes], bytes]) -> Op:
        """Recursive-doubling allreduce of an opaque byte value.

        ``op`` must be associative and commutative.  Non-power-of-two
        sizes fold the tail ranks into the main block first and fan the
        result back out afterwards.
        """
        tag = self._tagged(_TAG_REDUCE, "reduce")
        self._epoch["reduce"] += 1
        # recursive doubling exchanges are symmetric: both partners send
        # before either receives.  Rendezvous-sized payloads would have
        # both sides parked awaiting a CTS nobody can issue, so the
        # exchange is restricted to the eager path.
        for peer in self.peers.values():
            if len(value) > peer.eager_size:
                raise ValueError(
                    f"allreduce value of {len(value)} bytes exceeds the "
                    f"eager threshold ({peer.eager_size}); symmetric "
                    "exchanges cannot use the rendezvous protocol"
                )
        n = self.size
        pow2 = 1
        while pow2 * 2 <= n:
            pow2 *= 2
        rem = n - pow2
        data = value
        # fold-in: ranks >= pow2 send to (rank - pow2)
        if self.rank >= pow2:
            yield from self.send(self.rank - pow2, tag, data)
            result = yield from self.recv(self.rank - pow2, tag)
            return result
        if self.rank < rem:
            other = yield from self.recv(self.rank + pow2, tag)
            data = op(data, other)
        # recursive doubling within the power-of-two block
        distance = 1
        while distance < pow2:
            partner = self.rank ^ distance
            yield from self.send(partner, tag, data)
            other = yield from self.recv(partner, tag)
            data = op(data, other)
            distance *= 2
        # fold-out
        if self.rank < rem:
            yield from self.send(self.rank + pow2, tag, data)
        return data


def connect_group(tb, node_names: list[str], eager_size: int = 4096,
                  wait_mode: WaitMode = WaitMode.POLL,
                  reliability=None):
    """Wire a fully-connected communicator; one setup generator per rank.

    Each returned generator yields its :class:`CommGroup` once every
    pairwise channel is connected.  ``reliability`` sets the level of
    every pairwise VI — collectives on a lossy fabric need
    ``RELIABLE_DELIVERY``, or a single dropped signal wedges a barrier.
    """
    n = len(node_names)

    def disc(i: int, j: int) -> int:
        return 40_000 + i * 128 + j

    def rank_setup(i: int):
        h = tb.open(node_names[i], f"rank{i}")
        peers: dict[int, MsgEndpoint] = {}
        accepted: dict[int, MsgEndpoint] = {}

        def acceptor(j: int):
            vi = yield from h.create_vi(reliability)
            msg = MsgEndpoint(h, vi, eager_size=eager_size,
                              wait_mode=wait_mode)
            yield from msg.setup()
            req = yield from h.connect_wait(disc(j, i))
            yield from h.accept(req, vi)
            accepted[j] = msg

        # lower ranks dial higher ranks; higher ranks accept
        for j in range(n):
            if j > i:
                tb.spawn(acceptor(j), f"acc-{i}-{j}")
        for j in range(n):
            if j < i:
                vi = yield from h.create_vi(reliability)
                msg = MsgEndpoint(h, vi, eager_size=eager_size,
                                  wait_mode=wait_mode)
                yield from msg.setup()
                yield from h.connect(vi, node_names[j], disc(i, j))
                peers[j] = msg
        while len(accepted) < n - 1 - i:
            yield tb.sim.timeout(5.0)
        peers.update(accepted)
        return CommGroup(i, n, peers)

    return [rank_setup(i) for i in range(n)]
