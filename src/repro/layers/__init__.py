"""Programming-model layers over VIA (paper §3.3): messages, streams,
get/put, RPC, and a page-based DSM."""

from .collectives import CommGroup, connect_group
from .dsm import DsmNode, DsmStats, PageState, connect_mesh
from .getput import GetPut, RemoteWindow
from .msg import ANY_TAG, MsgEndpoint
from .rpc import RpcClient, RpcError, RpcServer
from .stream import ViaStream

__all__ = [
    "ANY_TAG",
    "CommGroup",
    "connect_group",
    "DsmNode",
    "DsmStats",
    "GetPut",
    "MsgEndpoint",
    "PageState",
    "RemoteWindow",
    "RpcClient",
    "RpcError",
    "RpcServer",
    "ViaStream",
    "connect_mesh",
]
