"""Overload chaos cells: spikes, stalls and partitions under policy.

The ``many_clients`` cell shows a cluster surviving a *fault*; these
three cells show it surviving *overload* — the failure mode the retry
and admission policies (:mod:`repro.cluster.policy`) exist for:

* ``retry_storm`` — a 10x arrival spike slams one server.  Bounded
  admission sheds the overflow, NAK'd clients back off instead of
  hot-looping, and the pass contract is *re-stabilization*: goodput in
  the post-spike window recovers to >= 90% of the pre-spike window
  (a metastable retry storm would keep the server pinned instead).
* ``slow_server_shed`` — the server's host CPU freezes mid-run.  The
  pending queue overflows, shedding kicks in, and the contract is that
  shed counters are nonzero while *every* client still resolves every
  request (completed, abandoned or deadline-exceeded — never hung).
* ``partition_retry`` — one client's uplink goes dark for longer than
  its per-request deadline, with one tenant per client.  The faulted
  tenant degrades; the contract is that every *other* tenant keeps its
  SLO (full completion, p99 under target).

Fault ``at``-offsets are gate-relative, as in the ``many_clients``
cell, so windows land mid-traffic on every provider.
"""

from __future__ import annotations

from ..check.invariants import ConformanceError
from .scenarios import ChaosScenario

__all__ = ["run_overload_scenario"]

#: one server plus five clients in a star
_NODES = 6

#: per-client stagger between otherwise identical schedules (us) — a
#: touch of skew so five clients never post at one simulated instant
_STAGGER_US = 13.0

#: partition_retry per-tenant SLO: p99 target (us) for spared tenants
_SLO_P99_US = 5_000.0


def _steady_offsets(n: int, gap_us: float, cid: int) -> list[float]:
    return [cid * _STAGGER_US + i * gap_us for i in range(n)]


def _spike_offsets(pre: int, spike: int, post: int, base_gap: float,
                   spike_gap: float, cid: int) -> tuple[list, float, float]:
    """pre/post at ``base_gap``, a burst at ``spike_gap`` in between.

    Returns ``(offsets, pre_end, spike_end)`` with the phase boundaries
    in gate-relative microseconds.
    """
    offs: list[float] = []
    t = cid * _STAGGER_US
    for _ in range(pre):
        offs.append(t)
        t += base_gap
    pre_end = pre * base_gap
    for _ in range(spike):
        offs.append(t)
        t += spike_gap
    spike_end = pre_end + spike * spike_gap
    for _ in range(post):
        offs.append(t)
        t += base_gap
    return offs, pre_end, spike_end


def run_overload_scenario(provider: str, sc: ChaosScenario, seed: int = 0,
                          quick: bool = False):
    """Run one overload scenario cell; returns a ScenarioResult."""
    from ..cluster.policy import RetryPolicy, ServerPolicy
    from ..cluster.server import ClusterServer, make_service
    from ..cluster.topology import build_testbed, make_topology
    from ..cluster.workload import LATENCY_BUCKETS, ClusterClient, StartGate
    from ..obs.metrics import Histogram
    from ..vibe.executor import task_seed
    from .chaos import ScenarioResult
    from .injector import attach_faults

    deadline_us = min(sc.deadline_us, 150_000.0) if quick else sc.deadline_us
    topo = make_topology("star", _NODES, 1)
    n_clients = len(topo.clients)
    faulted = {name for name in topo.clients
               if any(f.target and f.target.startswith(name + ".")
                      for f in sc.faults)}

    # -- per-cell workload shape and policies ---------------------------
    pre_end = spike_end = 0.0
    if sc.name == "retry_storm":
        # fixed:100 = 10k rps capacity; pre/post offer 2.5k, the spike
        # offers 100k — deep overload that must drain, not metastasize
        pre, spike, post = (4, 10, 4) if quick else (8, 24, 8)
        count = pre + spike + post
        service = "fixed:100"
        retry = RetryPolicy(max_retries=3, base_us=200.0, cap_us=5_000.0,
                            jitter=0.5, timeout_us=20_000.0)
        policy = ServerPolicy(queue_depth=16, shed_mode="tail")
        tenants = 1

        def offsets_for(cid: int) -> list[float]:
            nonlocal pre_end, spike_end
            offs, pre_end, spike_end = _spike_offsets(
                pre, spike, post, 2_000.0, 50.0, cid)
            return offs
    elif sc.name == "slow_server_shed":
        # 4.2k rps against 6.7k capacity: healthy until the 3 ms stall
        # parks the server and the bounded queue starts shedding
        count = 10 if quick else 24
        service = "fixed:150"
        retry = RetryPolicy()
        policy = ServerPolicy(queue_depth=8, shed_mode="tail")
        tenants = 1

        def offsets_for(cid: int) -> list[float]:
            return _steady_offsets(count, 1_200.0, cid)
    elif sc.name == "partition_retry":
        # per-request deadline (2 ms) shorter than the blackout
        # (2.5 ms): the dark tenant's requests expire and are NAK'd
        # RESP_EXPIRED on arrival, never charged service time.  Offered
        # load stays low enough (2k rps, 8k with full retry
        # amplification, against 10k capacity) that expiry-driven
        # retries cannot tip the spared tenants into overload
        count = 10 if quick else 24
        service = "fixed:100"
        retry = RetryPolicy(max_retries=3, base_us=200.0, cap_us=2_000.0,
                            jitter=0.5, timeout_us=2_000.0)
        policy = ServerPolicy(queue_depth=32, shed_mode="deadline")
        tenants = n_clients

        def offsets_for(cid: int) -> list[float]:
            return _steady_offsets(count, 2_500.0, cid)
    else:
        raise KeyError(f"unknown overload scenario {sc.name!r}")

    tb = build_testbed(provider, topo, seed=seed, check=True)
    plan = sc.plan(seed)
    hists = [Histogram("latency_us", LATENCY_BUCKETS)
             for _ in range(tenants)]
    gate = StartGate(tb.sim, n_clients)

    server = ClusterServer(
        tb, topo.servers[0], n_clients, n_clients * count,
        window=sc.window, service=make_service(service),
        reliability=sc.reliability,
        seed=task_seed(seed, "server"), deadline_us=deadline_us,
        policy=policy, deadline_aware=True,
    )
    clients = [
        ClusterClient(
            tb, topo.clients[i], i, topo.servers[0],
            n_requests=count, interval_us=1.0, window=sc.window,
            reliability=sc.reliability,
            seed=task_seed(seed, "client", i), hist=hists[i % tenants],
            deadline_us=deadline_us, gate=gate,
            retry=retry, tenant=i % tenants, offsets=offsets_for(i),
        )
        for i in range(n_clients)
    ]

    def arm():
        yield from gate.released()
        if plan.faults:
            attach_faults(tb, plan.shifted(tb.now))

    procs = [tb.spawn(server.body(), "overload-server")]
    procs += [tb.spawn(c.body(), f"overload-client-{c.cid}")
              for c in clients]
    tb.spawn(arm(), "fault-arm")
    violations: list = []
    try:
        for proc in procs:
            tb.run(proc)
        tb.run()  # drain stray timers so the quiesce audit sees quiet
        tb.checker.check_quiesced(tb)
    except ConformanceError as exc:
        violations.append(str(exc))
    except Exception as exc:  # a crash is also a chaos failure
        violations.append(f"crashed with {type(exc).__name__}: {exc}")

    delivered = sum(c.stats["completed"] for c in clients)
    expected = n_clients * count
    sheds = server.stats["shed_queue"] + server.stats["shed_deadline"]
    retried = sum(c.stats["retried"] for c in clients)
    resolved_clean = all(
        c.stats["completed"] + c.stats["abandoned"]
        + c.stats["deadline_exceeded"] == count
        for c in clients
    )
    t0 = gate.t0 if gate.t0 is not None else 0.0

    # -- per-cell verdict ----------------------------------------------
    error = ""
    note = ""
    if sc.name == "retry_storm":
        finishes = [t for c in clients for t in c.finish_times]
        pre_done = sum(1 for t in finishes if t <= t0 + pre_end)
        post_done = sum(1 for t in finishes
                        if t0 + spike_end <= t <= t0 + spike_end + pre_end)
        note = (f"pre {pre_done} / post {post_done} completions; "
                f"{sheds} shed, {retried} retried")
        if sheds == 0 or retried == 0:
            error = "the spike never overloaded the server"
        elif pre_done == 0 or post_done < 0.9 * pre_done:
            error = (f"goodput never re-stabilized: {post_done} post-spike "
                     f"vs {pre_done} pre-spike completions")
        elif not resolved_clean:
            error = "a client left requests unresolved"
    elif sc.name == "slow_server_shed":
        note = (f"{sheds} shed, {server.stats['naks_sent']} NAKs, "
                f"{retried} retried")
        if sheds == 0 or server.stats["naks_sent"] == 0:
            error = "the stall never forced a shed"
        elif not resolved_clean:
            error = "a client hung: requests left unresolved"
    elif sc.name == "partition_retry":
        spared = [i for i, c in enumerate(clients) if c.node not in faulted]
        dark = [c for c in clients if c.node in faulted]
        bad = []
        for i in spared:
            hist = hists[i % tenants]
            p99 = hist.quantile(0.99)
            if clients[i].stats["completed"] != count:
                bad.append(f"t{i}: {clients[i].stats['completed']}/{count}")
            elif p99 > _SLO_P99_US:
                bad.append(f"t{i}: p99 {p99:.0f}us")
        disrupted = sum(c.stats["retried"] + c.stats["deadline_exceeded"]
                        for c in dark)
        note = (f"{len(spared)} spared tenants clean; dark tenant saw "
                f"{disrupted} retries/expiries")
        if not dark:
            error = "the fault plan touched no client"
        elif disrupted == 0:
            error = "the blackout never disrupted the dark tenant"
        elif bad:
            error = "spared tenants broke SLO: " + ", ".join(bad)
        elif not resolved_clean:
            error = "a client left requests unresolved"

    finishes = [t for c in clients for t in c.finish_times]
    elapsed = (max(finishes) - t0) if finishes else 0.0
    providers = list(tb.providers.values())
    injector = tb.injector
    ok = not violations and not error
    return ScenarioResult(
        scenario=sc.name,
        provider=provider,
        ok=ok,
        delivered=delivered,
        expected=expected,
        duplicates=0,
        recoveries=sum(p.recoveries for p in providers),
        conn_retransmissions=sum(p.conn_retransmissions for p in providers),
        retransmissions=sum(p.engine.retransmissions for p in providers),
        faults_injected=(sum(injector.counters.values())
                         if injector is not None else 0),
        recovery_latency_us=0.0,
        elapsed_us=elapsed,
        goodput_mbs=0.0,
        violations=violations,
        note=error or note,
    )
