"""Declarative fault plans.

A :class:`FaultPlan` is a seedable, JSON-serializable schedule of
:class:`FaultSpec` entries.  Each spec names a fault *kind*, an optional
component *target*, and an activity window; the injector interprets the
rest of the fields per kind.  Plans are plain data — building one has no
effect until it is armed against a testbed (see
:func:`repro.faults.injector.attach_faults`).

Fault kinds
-----------

Wire faults (target matches a channel name like ``"node0.up"`` or a
node prefix like ``"node0"``; ``None`` matches every channel):

``wire_loss``       drop matching packets with probability ``rate``
``wire_corrupt``    flip bits in flight; the receiving NIC's CRC check
                    drops the packet before any protocol processing
``wire_duplicate``  deliver matching packets twice
``wire_reorder``    delay matching packets by ``magnitude`` µs so they
                    land behind later traffic
``link_down``       drop *everything* on matching channels (flap: give
                    the spec a ``duration``; the link comes back up when
                    the window closes)
``partition``       ``link_down`` on every channel (``target`` ignored)

NIC faults (target matches ``"node0.nic"`` or the ``"node0"`` prefix):

``doorbell_drop``   a rung doorbell is lost with probability ``rate``;
                    the posted descriptor sits until the NIC's periodic
                    recovery scan finds it after ``magnitude`` µs
                    (default 50)
``dma_abort``       a data-movement DMA fails with probability ``rate``;
                    the fragment is treated as lost on the wire
``tlb_flush``       flush the translation cache ``count`` times spaced
                    ``period`` µs apart, starting at ``at``

Host faults (target matches the node name):

``cpu_stall``       occupy the host CPU for ``duration`` µs starting at
                    ``at`` (descheduling / SMI analog)
``cpu_jitter``      scale CPU busy-times by ``1 + magnitude`` with
                    probability ``rate`` during the window
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

WIRE_KINDS = frozenset(
    {
        "wire_loss",
        "wire_corrupt",
        "wire_duplicate",
        "wire_reorder",
        "link_down",
        "partition",
    }
)
NIC_KINDS = frozenset({"doorbell_drop", "dma_abort", "tlb_flush"})
HOST_KINDS = frozenset({"cpu_stall", "cpu_jitter"})
ALL_KINDS = WIRE_KINDS | NIC_KINDS | HOST_KINDS

#: kinds that can lose data in flight and therefore require the
#: retransmission machinery (data-path RTO timers and the handshake
#: retransmission loop) to be armed
DELIVERY_KINDS = WIRE_KINDS | frozenset({"dma_abort"})

#: kinds that need rate-based sampling
_STOCHASTIC = frozenset(
    {"wire_loss", "wire_corrupt", "wire_duplicate", "wire_reorder",
     "doorbell_drop", "dma_abort", "cpu_jitter"}
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.  See the module docstring for kind semantics.

    ``skip`` ignores the first N matching opportunities and ``count``
    caps the number of injections, which together allow surgical tests
    ("drop exactly the third conn-request") without probabilities.
    """

    kind: str
    at: float = 0.0
    duration: float | None = None  # None = open-ended window
    target: str | None = None  # component name / node prefix; None = all
    rate: float = 1.0
    magnitude: float = 0.0
    count: int | None = None  # max injections (tlb_flush: storm length)
    period: float = 0.0  # tlb_flush: spacing between flushes
    skip: int = 0  # ignore the first N matching opportunities

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("at must be >= 0")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration must be positive (or None)")
        if self.kind in _STOCHASTIC and not 0.0 < self.rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")
        if self.kind == "wire_reorder" and self.magnitude <= 0:
            raise ValueError("wire_reorder needs magnitude (delay in us)")
        if self.kind == "cpu_jitter" and self.magnitude <= 0:
            raise ValueError("cpu_jitter needs magnitude (scale factor)")
        if self.kind == "cpu_stall" and self.duration is None:
            raise ValueError("cpu_stall needs duration")
        if self.kind == "tlb_flush" and self.count is not None and self.count < 1:
            raise ValueError("tlb_flush count must be >= 1")
        if self.count is not None and self.count < 0:
            raise ValueError("count must be >= 0")
        if self.skip < 0:
            raise ValueError("skip must be >= 0")

    @property
    def end(self) -> float:
        return float("inf") if self.duration is None else self.at + self.duration

    def active(self, now: float) -> bool:
        return self.at <= now < self.end

    def to_dict(self) -> dict:
        out = {"kind": self.kind}
        defaults = {f.name: f.default for f in dataclasses.fields(self)}
        for name, default in defaults.items():
            if name == "kind":
                continue
            value = getattr(self, name)
            if value != default:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seedable schedule of faults.

    ``seed`` drives every stochastic decision the injector makes (one
    independent stream per spec), so the same plan against the same
    testbed replays the exact same fault sequence.
    """

    name: str = "plan"
    seed: int = 0
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def affects_delivery(self) -> bool:
        """True when any fault can lose data in flight."""
        return any(s.kind in DELIVERY_KINDS for s in self.faults)

    def shifted(self, offset: float) -> "FaultPlan":
        """A copy with every window moved ``offset`` µs later — used to
        schedule a plan relative to the start of a workload's data phase."""
        moved = tuple(
            dataclasses.replace(s, at=s.at + offset) for s in self.faults
        )
        return dataclasses.replace(self, faults=moved)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [s.to_dict() for s in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            name=data.get("name", "plan"),
            seed=int(data.get("seed", 0)),
            faults=tuple(FaultSpec.from_dict(s) for s in data.get("faults", ())),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))
