"""The fault injector: arms a :class:`FaultPlan` against a testbed.

Hook sites in the hardware and engine models consult ``sim.faults``
exactly once per operation; when no plan is armed the attribute is
``None`` and the run is byte-identical to an unfaulted one.  Decisions
are deterministic: each spec gets its own ``random.Random`` stream
derived from the plan seed and the spec's position, and windows are
plain comparisons against ``sim.now`` — no toggle events are scheduled,
so an armed-but-never-matching plan perturbs nothing but the fault
processes it explicitly asks for (``tlb_flush`` storms, ``cpu_stall``
holds).
"""

from __future__ import annotations

import random

from .plan import DELIVERY_KINDS, HOST_KINDS, NIC_KINDS, WIRE_KINDS, FaultPlan, FaultSpec

__all__ = ["FaultInjector", "attach_faults"]

_DEFAULT_DOORBELL_SCAN = 50.0  # µs until the recovery scan finds the descriptor


def _matches(target: str | None, name: str) -> bool:
    """``None`` matches everything; otherwise exact name or node prefix
    (``"node0"`` matches ``"node0.up"``, ``"node0.nic"``, ...)."""
    return target is None or name == target or name.startswith(target + ".")


class FaultInjector:
    """Interprets a :class:`FaultPlan` against one testbed.

    Construction is inert; :meth:`arm` publishes the injector on
    ``sim.faults`` and spawns the active-fault processes.  All hook
    methods below are called from the hardware/engine models.
    """

    def __init__(self, testbed, plan: FaultPlan) -> None:
        self.tb = testbed
        self.sim = testbed.sim
        self.plan = plan
        self.armed = False
        #: total injections per fault kind (harvested as ``faults.*``)
        self.counters: dict[str, int] = {}
        #: injections per spec index (for surgical tests)
        self.injected: list[int] = [0] * len(plan.faults)
        self._seen: list[int] = [0] * len(plan.faults)
        self._rng: list[random.Random] = [
            random.Random(plan.seed * 1_000_003 + i * 7_919 + 17)
            for i in range(len(plan.faults))
        ]
        self._wire = [
            (i, s) for i, s in enumerate(plan.faults) if s.kind in WIRE_KINDS
        ]
        self._nic = [
            (i, s) for i, s in enumerate(plan.faults) if s.kind in NIC_KINDS
        ]
        self._host = [
            (i, s) for i, s in enumerate(plan.faults) if s.kind in HOST_KINDS
        ]
        #: True when any fault can lose data in flight; the engine and
        #: the connection handshake arm their retransmission machinery
        #: off this flag
        self.affects_delivery = any(
            s.kind in DELIVERY_KINDS for s in plan.faults
        )

    # -- lifecycle -------------------------------------------------------

    def arm(self) -> None:
        """Publish on ``sim.faults`` and start the active-fault processes."""
        if self.armed or not self.plan.faults:
            return
        self.armed = True
        self.sim.faults = self
        for i, spec in enumerate(self.plan.faults):
            if spec.kind == "tlb_flush":
                for node in self._matching_nodes(spec, suffix=".nic"):
                    self.sim.process(
                        self._tlb_storm(i, spec, node.nic),
                        name=f"fault-tlb-{node.name}",
                    )
            elif spec.kind == "cpu_stall":
                for node in self._matching_nodes(spec):
                    self.sim.process(
                        self._cpu_stall(i, spec, node.cpu),
                        name=f"fault-stall-{node.name}",
                    )

    def _matching_nodes(self, spec: FaultSpec, suffix: str = ""):
        for name in self.tb.node_names:
            if _matches(spec.target, name + suffix) or _matches(spec.target, name):
                yield self.tb.fabric.node(name)

    # -- decision core ---------------------------------------------------

    def _fires(self, index: int, spec: FaultSpec) -> bool:
        """Window + rate + skip/count gate for one opportunity."""
        if not spec.active(self.sim.now):
            return False
        if spec.count is not None and self.injected[index] >= spec.count:
            return False
        if spec.rate < 1.0 and self._rng[index].random() >= spec.rate:
            return False
        self._seen[index] += 1
        if self._seen[index] <= spec.skip:
            return False
        self.injected[index] += 1
        self.counters[spec.kind] = self.counters.get(spec.kind, 0) + 1
        return True

    # -- wire hooks (hw/link.py) -----------------------------------------

    def wire_fate(self, channel, packet) -> tuple[str, float]:
        """Decide what happens to ``packet`` on ``channel``.

        Returns ``(fate, extra_delay)`` with fate one of ``"pass"``,
        ``"drop"``, ``"corrupt"``, ``"dup"``; ``extra_delay`` carries
        reorder jitter and applies to non-dropped packets.
        """
        fate = "pass"
        extra = 0.0
        for i, spec in self._wire:
            if spec.kind != "partition" and not _matches(spec.target, channel.name):
                continue
            if spec.kind in ("link_down", "partition"):
                if self._fires(i, spec):
                    return "drop", 0.0
            elif spec.kind == "wire_loss":
                if fate == "pass" and self._fires(i, spec):
                    fate = "drop"
            elif spec.kind == "wire_corrupt":
                if fate == "pass" and self._fires(i, spec):
                    fate = "corrupt"
            elif spec.kind == "wire_duplicate":
                if fate == "pass" and self._fires(i, spec):
                    fate = "dup"
            elif spec.kind == "wire_reorder":
                if self._fires(i, spec):
                    extra += spec.magnitude
        if fate == "drop":
            extra = 0.0
        return fate, extra

    # -- NIC hooks (hw/nic.py, providers/base.py, providers/engine.py) ---

    def doorbell_dropped(self, nic_name: str) -> float | None:
        """``None`` when the ring goes through; otherwise the delay until
        the NIC's recovery scan discovers the posted descriptor."""
        for i, spec in self._nic:
            if spec.kind != "doorbell_drop":
                continue
            if not _matches(spec.target, nic_name):
                continue
            if self._fires(i, spec):
                return spec.magnitude if spec.magnitude > 0 else _DEFAULT_DOORBELL_SCAN
        return None

    def dma_abort(self, nic_name: str) -> bool:
        """True when a data-movement DMA on this NIC should fail."""
        for i, spec in self._nic:
            if spec.kind != "dma_abort":
                continue
            if not _matches(spec.target, nic_name):
                continue
            if self._fires(i, spec):
                return True
        return False

    # -- host hooks (hw/cpu.py) ------------------------------------------

    def cpu_time(self, cpu_name: str, duration: float) -> float:
        """Scale a CPU busy-time by any active jitter faults."""
        for i, spec in self._host:
            if spec.kind != "cpu_jitter":
                continue
            if not _matches(spec.target, cpu_name):
                continue
            if self._fires(i, spec):
                duration *= 1.0 + spec.magnitude
        return duration

    # -- active-fault processes ------------------------------------------

    def _tlb_storm(self, index: int, spec: FaultSpec, nic):
        wait = spec.at - self.sim.now
        if wait > 0:
            yield self.sim.timeout(wait)
        flushes = spec.count if spec.count is not None else 1
        for n in range(flushes):
            nic.tlb.flush()
            self.injected[index] += 1
            self.counters["tlb_flush"] = self.counters.get("tlb_flush", 0) + 1
            self.sim.trace("fault", "tlb_flush", nic.name, n=n)
            if n + 1 < flushes and spec.period > 0:
                yield self.sim.timeout(spec.period)

    def _cpu_stall(self, index: int, spec: FaultSpec, cpu):
        wait = spec.at - self.sim.now
        if wait > 0:
            yield self.sim.timeout(wait)
        yield cpu.resource.request()
        self.injected[index] += 1
        self.counters["cpu_stall"] = self.counters.get("cpu_stall", 0) + 1
        self.sim.trace("fault", "cpu_stall", cpu.name, duration=spec.duration)
        try:
            yield self.sim.timeout(spec.duration)
        finally:
            cpu.resource.release()


def attach_faults(testbed, plan: FaultPlan) -> FaultInjector:
    """Build and arm a :class:`FaultInjector`; mirror of
    ``repro.check.invariants.attach_checker``.

    An empty plan arms nothing: ``sim.faults`` stays ``None`` and the
    run is byte-identical to an unfaulted one.
    """
    injector = FaultInjector(testbed, plan)
    testbed.injector = injector
    injector.arm()
    return injector
