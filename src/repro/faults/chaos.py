"""The ``vibe chaos`` campaign: named fault scenarios on every provider.

Each scenario runs a windowed client/server stream on a conformance-
checked testbed (``check=True``) while its :class:`FaultPlan` is armed.
The workload embeds a 4-byte message index in every payload so the
server can detect duplicates, and both endpoints implement the full
VIPL catastrophic-error recovery sequence: drain completions, reset the
erred VI, reconnect, repost and resend.  A reliable-level scenario
passes only when every message is eventually delivered and no
conformance invariant fired; unreliable scenarios promise only
invariant-clean loss.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

from ..check.invariants import ConformanceError
from ..providers.registry import Testbed
from ..sim.ids import reset_ids
from ..sim.trace import Tracer
from ..snap.format import blob_hash
from ..snap.recipe import (Session, build_session, checkpoint_replay,
                           register_builder, restore_replay)
from ..via.constants import CompletionStatus, Reliability, ViState
from ..via.descriptor import Descriptor
from ..via.errors import VipConnectionError, VipTimeout
from .injector import attach_faults
from .scenarios import SCENARIOS, ChaosScenario, get_scenario

__all__ = ["ScenarioResult", "ChaosReport", "RewindResult", "run_scenario",
           "rewind_scenario", "run_chaos"]

_MARK = 4            # bytes of big-endian message index in every payload
_POLL_US = 2_000.0   # server redial-detection poll period


@dataclass
class ScenarioResult:
    """Outcome of one (scenario, provider) cell of the campaign."""

    scenario: str
    provider: str
    ok: bool
    delivered: int
    expected: int
    duplicates: int
    recoveries: int
    conn_retransmissions: int
    retransmissions: int
    faults_injected: int
    recovery_latency_us: float
    elapsed_us: float
    goodput_mbs: float
    violations: list = field(default_factory=list)
    note: str = ""

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class ChaosReport:
    """Everything one chaos campaign learned."""

    providers: tuple
    scenarios: tuple
    results: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.results) and all(r.ok for r in self.results)

    def summary(self) -> str:
        lines = [
            f"chaos: {len(self.scenarios)} scenarios x "
            f"{len(self.providers)} providers "
            f"({', '.join(self.providers)})",
            f"  {'scenario':<20} {'provider':<8} {'verdict':<7} "
            f"{'delivered':>9} {'dup':>4} {'recov':>5} {'retx':>5} "
            f"{'faults':>6} {'rec_lat_us':>10}",
        ]
        for r in self.results:
            verdict = "ok" if r.ok else "FAIL"
            retx = r.retransmissions + r.conn_retransmissions
            lines.append(
                f"  {r.scenario:<20} {r.provider:<8} {verdict:<7} "
                f"{r.delivered:>4}/{r.expected:<4} {r.duplicates:>4} "
                f"{r.recoveries:>5} {retx:>5} {r.faults_injected:>6} "
                f"{r.recovery_latency_us:>10.1f}"
            )
        for r in self.results:
            for v in r.violations:
                lines.append(f"  {r.scenario} on {r.provider}: {v}")
            if r.note and not r.ok:
                lines.append(f"  {r.scenario} on {r.provider}: {r.note}")
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "providers": list(self.providers),
                "scenarios": list(self.scenarios),
                "ok": self.ok,
                "results": [r.to_dict() for r in self.results],
            },
            indent=2,
            sort_keys=True,
        )


def _cell_params(provider: str, sc: ChaosScenario, seed: int,
                 quick: bool) -> dict:
    """The picklable genesis parameters of one (scenario, provider) cell."""
    return {"provider": provider, "scenario": sc.name,
            "seed": int(seed), "quick": bool(quick)}


@register_builder("chaos")
def _chaos_builder(params: dict) -> "Session":
    """Genesis builder: rebuild a chaos cell from its parameters alone."""
    return _make_session(params["provider"], get_scenario(params["scenario"]),
                         params["seed"], params["quick"])


def _make_session(provider: str, sc: ChaosScenario, seed: int,
                  quick: bool) -> "Session":
    """Stand up one scenario cell: testbed, plan, both endpoint processes.

    Everything the run will observe lives in the returned session's
    board, so a cold cell and a restored-and-finished cell can be
    compared field by field.
    """
    count = min(sc.count, 8) if quick else sc.count
    deadline_us = min(sc.deadline_us, 150_000.0) if quick else sc.deadline_us
    window = min(sc.window, count)
    size = sc.size
    slot = max(size, _MARK)
    disc = 71
    tb = Testbed(provider, seed=seed, check=True)
    plan = sc.plan(seed)
    if sc.phase == "all":
        attach_faults(tb, plan)
    client_name, server_name = tb.node_names[0], tb.node_names[1]
    stats = {
        "acked": 0, "delivered": 0, "dups": 0, "recovery_latency": 0.0,
        "elapsed": 0.0, "error": "",
    }
    violations: list = []

    def client_body():
        h = tb.open(client_name, "client")
        vi = yield from h.create_vi(reliability=sc.reliability)
        buf = h.alloc(slot * window)
        mh = yield from h.register_mem(buf)
        deadline = tb.now + deadline_us

        def remaining() -> float:
            return deadline - tb.now

        def dial():
            """Dial until accepted or the deadline passes; True on success."""
            while remaining() > 0:
                try:
                    yield from h.connect(vi, server_name, disc,
                                         timeout=remaining())
                    return True
                except VipTimeout:
                    return False
                except VipConnectionError:
                    continue  # handshake retries exhausted: dial again
            return False

        if not (yield from dial()):
            stats["error"] = "client: connect deadline exceeded"
            return
        if sc.phase == "data":
            attach_faults(tb, plan.shifted(tb.now))
        t0 = tb.now
        next_idx = 0
        posted: deque[int] = deque()  # indices in flight, FIFO
        while stats["acked"] < count:
            if remaining() <= 0:
                stats["error"] = "client: send deadline exceeded"
                break
            while next_idx < count and len(posted) < window:
                s = next_idx % window
                h.write(buf, next_idx.to_bytes(_MARK, "big"), offset=s * slot)
                yield from h.post_send(
                    vi, Descriptor.send([h.segment(buf, mh, s * slot, size)]))
                posted.append(next_idx)
                next_idx += 1
            budget = remaining()  # posting cost may have crossed the deadline
            if budget <= 0:
                stats["error"] = "client: send deadline exceeded"
                break
            try:
                desc = yield from h.send_wait(vi, timeout=budget)
            except VipTimeout:
                stats["error"] = "client: send deadline exceeded"
                break
            if desc.status is CompletionStatus.SUCCESS:
                posted.popleft()
                stats["acked"] += 1
                continue
            # -- catastrophic error: drain, reset, reconnect, resend ----
            t_err = tb.now
            while True:
                d = yield from h.send_done(vi)
                if d is None:
                    break
                if d.status is CompletionStatus.SUCCESS:
                    posted.popleft()
                    stats["acked"] += 1
            if posted:
                next_idx = posted[0]  # rewind to the first unacked message
                posted.clear()
            yield from h.reset_vi(vi)
            if not (yield from dial()):
                stats["error"] = "client: reconnect deadline exceeded"
                break
            lat = tb.now - t_err
            if lat > stats["recovery_latency"]:
                stats["recovery_latency"] = lat
        stats["elapsed"] = tb.now - t0
        if stats["acked"] == count and vi.state is ViState.CONNECTED:
            yield from h.disconnect(vi)

    def server_body():
        h = tb.open(server_name, "server")
        vi = yield from h.create_vi(reliability=sc.reliability)
        buf = h.alloc(slot * window)
        mh = yield from h.register_mem(buf)
        deadline = tb.now + deadline_us
        slots: deque[int] = deque()  # slot per posted recv, FIFO
        seen: set[int] = set()

        def remaining() -> float:
            return deadline - tb.now

        def post_slot(s: int):
            yield from h.post_recv(
                vi, Descriptor.recv([h.segment(buf, mh, s * slot, slot)]))
            slots.append(s)

        def consume(desc) -> tuple[int, bool]:
            """Account one completed recv; returns (freed slot, had data)."""
            s = slots.popleft()
            if desc.status is not CompletionStatus.SUCCESS:
                return s, False
            idx = int.from_bytes(h.read(buf, _MARK, offset=s * slot), "big")
            if idx in seen:
                stats["dups"] += 1
            else:
                seen.add(idx)
            return s, True

        for s in range(window):
            yield from post_slot(s)
        try:
            req = yield from h.connect_wait(disc, timeout=remaining())
        except VipTimeout:
            stats["error"] = stats["error"] or "server: nobody connected"
            return
        yield from h.accept(req, vi)
        while remaining() > 0:
            if len(seen) >= count and vi.state is not ViState.CONNECTED:
                # the client only disconnects once every send is acked, so
                # a passive teardown after full delivery ends the stream.
                # Until then keep serving: the client may still be
                # redialing to resend messages whose acks were lost.
                break
            try:
                desc = yield from h.recv_wait(
                    vi, timeout=min(_POLL_US, remaining()))
            except VipTimeout:
                if tb.providers[server_name].connmgr.pending_count(disc):
                    # the client redialed after an error: tear down the
                    # dead connection and accept the fresh one
                    if vi.state is ViState.CONNECTED:
                        yield from h.disconnect(vi)
                    while True:
                        d = yield from h.recv_done(vi)
                        if d is None:
                            break
                        consume(d)
                    yield from h.reset_vi(vi)
                    slots.clear()
                    for s in range(window):
                        yield from post_slot(s)
                    budget = remaining()  # teardown may cross the deadline
                    if budget <= 0:
                        break
                    try:
                        req = yield from h.connect_wait(disc, timeout=budget)
                    except VipTimeout:
                        break
                    yield from h.accept(req, vi)
                continue
            s, _had_data = consume(desc)
            if vi.is_connected and len(seen) < count:
                yield from post_slot(s)
        stats["delivered"] = len(seen)

    procs = [tb.spawn(client_body(), "chaos-client"),
             tb.spawn(server_body(), "chaos-server")]
    board = {"stats": stats, "violations": violations,
             "count": count, "size": size}
    return Session(tb, procs, board)


def _finish_scenario(session: "Session", provider: str,
                     sc: ChaosScenario) -> ScenarioResult:
    """Drive a (possibly restored) scenario session to its verdict."""
    tb = session.testbed
    stats = session.board["stats"]
    violations = session.board["violations"]
    count = session.board["count"]
    size = session.board["size"]
    try:
        for proc in session.procs:
            tb.run(proc)
        tb.run()  # drain stray timers so the quiesce audit sees a quiet sim
        tb.checker.check_quiesced(tb)
    except ConformanceError as exc:
        violations.append(str(exc))
    except Exception as exc:  # a crash is also a chaos failure
        violations.append(f"crashed with {type(exc).__name__}: {exc}")

    providers = list(tb.providers.values())
    recoveries = sum(p.recoveries for p in providers)
    conn_retx = sum(p.conn_retransmissions for p in providers)
    retx = sum(p.engine.retransmissions for p in providers)
    injector = tb.injector
    faults_injected = (sum(injector.counters.values())
                       if injector is not None else 0)
    delivered = stats["delivered"]
    elapsed = stats["elapsed"]
    goodput = delivered * size / elapsed if elapsed > 0 else 0.0
    if sc.expect_delivery:
        ok = (not violations and not stats["error"]
              and delivered == count and stats["acked"] == count)
    else:
        ok = not violations
    return ScenarioResult(
        scenario=sc.name,
        provider=provider,
        ok=ok,
        delivered=delivered,
        expected=count,
        duplicates=stats["dups"],
        recoveries=recoveries,
        conn_retransmissions=conn_retx,
        retransmissions=retx,
        faults_injected=faults_injected,
        recovery_latency_us=stats["recovery_latency"],
        elapsed_us=elapsed,
        goodput_mbs=goodput,
        violations=violations,
        note=stats["error"],
    )


def run_scenario(provider: str, sc: ChaosScenario, seed: int = 0,
                 quick: bool = False) -> ScenarioResult:
    """Run one scenario on one provider under the conformance checker."""
    if sc.workload == "cluster":
        from .cluster_cell import run_cluster_scenario

        return run_cluster_scenario(provider, sc, seed=seed, quick=quick)
    if sc.workload == "overload":
        from .overload_cell import run_overload_scenario

        return run_overload_scenario(provider, sc, seed=seed, quick=quick)
    from .scenarios import _BY_NAME

    if _BY_NAME.get(sc.name) == sc:
        # registered scenario: build through the genesis registry, so
        # the cell is replay-checkpointable (vibe chaos --rewind)
        session = build_session("chaos", _cell_params(provider, sc, seed,
                                                      quick))
    else:
        # ad-hoc scenario object: same run, just not checkpointable
        reset_ids()
        session = _make_session(provider, sc, seed, quick)
    return _finish_scenario(session, provider, sc)


@dataclass
class RewindResult:
    """What one ``--rewind`` cell produced: a checkpoint taken just
    before the first fault window opens, proof it restores, and the
    verdict of the restored run."""

    scenario: str
    provider: str
    t_arm_us: float          # when the earliest fault window opens
    checkpoint_event: int    # event cursor the checkpoint was taken at
    checkpoint_bytes: int
    blob_sha256: str
    events_traced: int       # events recorded from the fault window on
    matches_cold: bool       # restored verdict == cold verdict
    result: ScenarioResult = None

    def summary(self) -> str:
        verdict = "ok" if (self.result.ok and self.matches_cold) else "FAIL"
        return (f"  {self.scenario:<20} {self.provider:<8} {verdict:<7} "
                f"arm@{self.t_arm_us:>10.1f}us  ckpt@ev{self.checkpoint_event:<7} "
                f"{self.checkpoint_bytes:>6}B  traced {self.events_traced}")


def rewind_scenario(provider: str, sc: ChaosScenario, seed: int = 0,
                    quick: bool = False) -> RewindResult:
    """Checkpoint a scenario just before its first fault arms, restore
    the checkpoint, and re-run the fault window under a tracer.

    The debugging workflow this enables: a chaos cell fails, you rewind
    to the moment before the fault fires and replay just the
    interesting window — with tracing, a debugger, or a code tweak —
    in milliseconds instead of re-simulating the whole warmup.

    Two runs happen: a *cold* discovery run (to learn the absolute arm
    time — ``phase="data"`` plans are scheduled relative to connect)
    and the rewound run restored from the checkpoint.  Their verdicts
    must agree (``matches_cold``); tracing is observation-only.
    """
    if sc.workload != "stream":
        raise ValueError(
            f"scenario {sc.name!r} runs a {sc.workload} workload; "
            "--rewind supports two-node stream scenarios only")
    params = _cell_params(provider, sc, seed, quick)
    # discovery: run cold to completion, learn when the plan armed
    probe = build_session("chaos", params)
    cold = _finish_scenario(probe, provider, sc)
    injector = probe.testbed.injector
    if injector is None or not injector.plan.faults:
        raise ValueError(
            f"scenario {sc.name!r} never armed a fault plan on "
            f"{provider}; nothing to rewind to")
    t_arm = min(spec.at for spec in injector.plan.faults)

    # fresh cell, advanced to just before the first fault window opens
    session = build_session("chaos", params)
    sim = session.sim
    while sim.peek() < t_arm:
        if session.run_events(1) == 0:
            break
    blob = checkpoint_replay(session)

    # restore (replays genesis to the cursor, verifies the fingerprint)
    # and watch the fault window under a tracer
    restored = restore_replay(blob)
    tracer = Tracer()
    restored.testbed.sim.tracer = tracer
    result = _finish_scenario(restored, provider, sc)
    matches = result.to_dict() == cold.to_dict()
    return RewindResult(
        scenario=sc.name,
        provider=provider,
        t_arm_us=t_arm,
        checkpoint_event=_meta_events(blob),
        checkpoint_bytes=len(blob),
        blob_sha256=blob_hash(blob),
        events_traced=len(tracer.events),
        matches_cold=matches,
        result=result,
    )


def _meta_events(blob: bytes) -> int:
    from ..snap.format import decode

    _tier, _payload, meta = decode(blob)
    return int(meta.get("events_run", -1))


def run_chaos(providers: tuple | None = None,
              scenarios: tuple | None = None,
              seed: int = 0,
              quick: bool = False) -> ChaosReport:
    """Run the campaign; never raises, inspect ``report.ok``."""
    if providers is None:
        from ..check import ALL_PROVIDERS

        providers = ALL_PROVIDERS
    if scenarios:
        chosen = tuple(get_scenario(n) for n in scenarios)
    else:
        chosen = SCENARIOS
    report = ChaosReport(providers=tuple(providers),
                         scenarios=tuple(sc.name for sc in chosen))
    for sc in chosen:
        for p in providers:
            report.results.append(run_scenario(p, sc, seed=seed, quick=quick))
    return report
