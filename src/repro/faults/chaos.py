"""The ``vibe chaos`` campaign: named fault scenarios on every provider.

Each scenario runs a windowed client/server stream on a conformance-
checked testbed (``check=True``) while its :class:`FaultPlan` is armed.
The workload embeds a 4-byte message index in every payload so the
server can detect duplicates, and both endpoints implement the full
VIPL catastrophic-error recovery sequence: drain completions, reset the
erred VI, reconnect, repost and resend.  A reliable-level scenario
passes only when every message is eventually delivered and no
conformance invariant fired; unreliable scenarios promise only
invariant-clean loss.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

from ..check.invariants import ConformanceError
from ..providers.registry import Testbed
from ..via.constants import CompletionStatus, Reliability, ViState
from ..via.descriptor import Descriptor
from ..via.errors import VipConnectionError, VipTimeout
from .injector import attach_faults
from .scenarios import SCENARIOS, ChaosScenario, get_scenario

__all__ = ["ScenarioResult", "ChaosReport", "run_scenario", "run_chaos"]

_MARK = 4            # bytes of big-endian message index in every payload
_POLL_US = 2_000.0   # server redial-detection poll period


@dataclass
class ScenarioResult:
    """Outcome of one (scenario, provider) cell of the campaign."""

    scenario: str
    provider: str
    ok: bool
    delivered: int
    expected: int
    duplicates: int
    recoveries: int
    conn_retransmissions: int
    retransmissions: int
    faults_injected: int
    recovery_latency_us: float
    elapsed_us: float
    goodput_mbs: float
    violations: list = field(default_factory=list)
    note: str = ""

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class ChaosReport:
    """Everything one chaos campaign learned."""

    providers: tuple
    scenarios: tuple
    results: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.results) and all(r.ok for r in self.results)

    def summary(self) -> str:
        lines = [
            f"chaos: {len(self.scenarios)} scenarios x "
            f"{len(self.providers)} providers "
            f"({', '.join(self.providers)})",
            f"  {'scenario':<20} {'provider':<8} {'verdict':<7} "
            f"{'delivered':>9} {'dup':>4} {'recov':>5} {'retx':>5} "
            f"{'faults':>6} {'rec_lat_us':>10}",
        ]
        for r in self.results:
            verdict = "ok" if r.ok else "FAIL"
            retx = r.retransmissions + r.conn_retransmissions
            lines.append(
                f"  {r.scenario:<20} {r.provider:<8} {verdict:<7} "
                f"{r.delivered:>4}/{r.expected:<4} {r.duplicates:>4} "
                f"{r.recoveries:>5} {retx:>5} {r.faults_injected:>6} "
                f"{r.recovery_latency_us:>10.1f}"
            )
        for r in self.results:
            for v in r.violations:
                lines.append(f"  {r.scenario} on {r.provider}: {v}")
            if r.note and not r.ok:
                lines.append(f"  {r.scenario} on {r.provider}: {r.note}")
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "providers": list(self.providers),
                "scenarios": list(self.scenarios),
                "ok": self.ok,
                "results": [r.to_dict() for r in self.results],
            },
            indent=2,
            sort_keys=True,
        )


def run_scenario(provider: str, sc: ChaosScenario, seed: int = 0,
                 quick: bool = False) -> ScenarioResult:
    """Run one scenario on one provider under the conformance checker."""
    if sc.workload == "cluster":
        from .cluster_cell import run_cluster_scenario

        return run_cluster_scenario(provider, sc, seed=seed, quick=quick)
    count = min(sc.count, 8) if quick else sc.count
    deadline_us = min(sc.deadline_us, 150_000.0) if quick else sc.deadline_us
    window = min(sc.window, count)
    size = sc.size
    slot = max(size, _MARK)
    disc = 71
    tb = Testbed(provider, seed=seed, check=True)
    plan = sc.plan(seed)
    if sc.phase == "all":
        attach_faults(tb, plan)
    client_name, server_name = tb.node_names[0], tb.node_names[1]
    stats = {
        "acked": 0, "delivered": 0, "dups": 0, "recovery_latency": 0.0,
        "elapsed": 0.0, "error": "",
    }
    violations: list = []

    def client_body():
        h = tb.open(client_name, "client")
        vi = yield from h.create_vi(reliability=sc.reliability)
        buf = h.alloc(slot * window)
        mh = yield from h.register_mem(buf)
        deadline = tb.now + deadline_us

        def remaining() -> float:
            return deadline - tb.now

        def dial():
            """Dial until accepted or the deadline passes; True on success."""
            while remaining() > 0:
                try:
                    yield from h.connect(vi, server_name, disc,
                                         timeout=remaining())
                    return True
                except VipTimeout:
                    return False
                except VipConnectionError:
                    continue  # handshake retries exhausted: dial again
            return False

        if not (yield from dial()):
            stats["error"] = "client: connect deadline exceeded"
            return
        if sc.phase == "data":
            attach_faults(tb, plan.shifted(tb.now))
        t0 = tb.now
        next_idx = 0
        posted: deque[int] = deque()  # indices in flight, FIFO
        while stats["acked"] < count:
            if remaining() <= 0:
                stats["error"] = "client: send deadline exceeded"
                break
            while next_idx < count and len(posted) < window:
                s = next_idx % window
                h.write(buf, next_idx.to_bytes(_MARK, "big"), offset=s * slot)
                yield from h.post_send(
                    vi, Descriptor.send([h.segment(buf, mh, s * slot, size)]))
                posted.append(next_idx)
                next_idx += 1
            budget = remaining()  # posting cost may have crossed the deadline
            if budget <= 0:
                stats["error"] = "client: send deadline exceeded"
                break
            try:
                desc = yield from h.send_wait(vi, timeout=budget)
            except VipTimeout:
                stats["error"] = "client: send deadline exceeded"
                break
            if desc.status is CompletionStatus.SUCCESS:
                posted.popleft()
                stats["acked"] += 1
                continue
            # -- catastrophic error: drain, reset, reconnect, resend ----
            t_err = tb.now
            while True:
                d = yield from h.send_done(vi)
                if d is None:
                    break
                if d.status is CompletionStatus.SUCCESS:
                    posted.popleft()
                    stats["acked"] += 1
            if posted:
                next_idx = posted[0]  # rewind to the first unacked message
                posted.clear()
            yield from h.reset_vi(vi)
            if not (yield from dial()):
                stats["error"] = "client: reconnect deadline exceeded"
                break
            lat = tb.now - t_err
            if lat > stats["recovery_latency"]:
                stats["recovery_latency"] = lat
        stats["elapsed"] = tb.now - t0
        if stats["acked"] == count and vi.state is ViState.CONNECTED:
            yield from h.disconnect(vi)

    def server_body():
        h = tb.open(server_name, "server")
        vi = yield from h.create_vi(reliability=sc.reliability)
        buf = h.alloc(slot * window)
        mh = yield from h.register_mem(buf)
        deadline = tb.now + deadline_us
        slots: deque[int] = deque()  # slot per posted recv, FIFO
        seen: set[int] = set()

        def remaining() -> float:
            return deadline - tb.now

        def post_slot(s: int):
            yield from h.post_recv(
                vi, Descriptor.recv([h.segment(buf, mh, s * slot, slot)]))
            slots.append(s)

        def consume(desc) -> tuple[int, bool]:
            """Account one completed recv; returns (freed slot, had data)."""
            s = slots.popleft()
            if desc.status is not CompletionStatus.SUCCESS:
                return s, False
            idx = int.from_bytes(h.read(buf, _MARK, offset=s * slot), "big")
            if idx in seen:
                stats["dups"] += 1
            else:
                seen.add(idx)
            return s, True

        for s in range(window):
            yield from post_slot(s)
        try:
            req = yield from h.connect_wait(disc, timeout=remaining())
        except VipTimeout:
            stats["error"] = stats["error"] or "server: nobody connected"
            return
        yield from h.accept(req, vi)
        while remaining() > 0:
            if len(seen) >= count and vi.state is not ViState.CONNECTED:
                # the client only disconnects once every send is acked, so
                # a passive teardown after full delivery ends the stream.
                # Until then keep serving: the client may still be
                # redialing to resend messages whose acks were lost.
                break
            try:
                desc = yield from h.recv_wait(
                    vi, timeout=min(_POLL_US, remaining()))
            except VipTimeout:
                if tb.providers[server_name].connmgr.pending_count(disc):
                    # the client redialed after an error: tear down the
                    # dead connection and accept the fresh one
                    if vi.state is ViState.CONNECTED:
                        yield from h.disconnect(vi)
                    while True:
                        d = yield from h.recv_done(vi)
                        if d is None:
                            break
                        consume(d)
                    yield from h.reset_vi(vi)
                    slots.clear()
                    for s in range(window):
                        yield from post_slot(s)
                    budget = remaining()  # teardown may cross the deadline
                    if budget <= 0:
                        break
                    try:
                        req = yield from h.connect_wait(disc, timeout=budget)
                    except VipTimeout:
                        break
                    yield from h.accept(req, vi)
                continue
            s, _had_data = consume(desc)
            if vi.is_connected and len(seen) < count:
                yield from post_slot(s)
        stats["delivered"] = len(seen)

    cproc = tb.spawn(client_body(), "chaos-client")
    sproc = tb.spawn(server_body(), "chaos-server")
    try:
        tb.run(cproc)
        tb.run(sproc)
        tb.run()  # drain stray timers so the quiesce audit sees a quiet sim
        tb.checker.check_quiesced(tb)
    except ConformanceError as exc:
        violations.append(str(exc))
    except Exception as exc:  # a crash is also a chaos failure
        violations.append(f"crashed with {type(exc).__name__}: {exc}")

    providers = list(tb.providers.values())
    recoveries = sum(p.recoveries for p in providers)
    conn_retx = sum(p.conn_retransmissions for p in providers)
    retx = sum(p.engine.retransmissions for p in providers)
    injector = tb.injector
    faults_injected = (sum(injector.counters.values())
                       if injector is not None else 0)
    delivered = stats["delivered"]
    elapsed = stats["elapsed"]
    goodput = delivered * size / elapsed if elapsed > 0 else 0.0
    if sc.expect_delivery:
        ok = (not violations and not stats["error"]
              and delivered == count and stats["acked"] == count)
    else:
        ok = not violations
    return ScenarioResult(
        scenario=sc.name,
        provider=provider,
        ok=ok,
        delivered=delivered,
        expected=count,
        duplicates=stats["dups"],
        recoveries=recoveries,
        conn_retransmissions=conn_retx,
        retransmissions=retx,
        faults_injected=faults_injected,
        recovery_latency_us=stats["recovery_latency"],
        elapsed_us=elapsed,
        goodput_mbs=goodput,
        violations=violations,
        note=stats["error"],
    )


def run_chaos(providers: tuple | None = None,
              scenarios: tuple | None = None,
              seed: int = 0,
              quick: bool = False) -> ChaosReport:
    """Run the campaign; never raises, inspect ``report.ok``."""
    if providers is None:
        from ..check import ALL_PROVIDERS

        providers = ALL_PROVIDERS
    if scenarios:
        chosen = tuple(get_scenario(n) for n in scenarios)
    else:
        chosen = SCENARIOS
    report = ChaosReport(providers=tuple(providers),
                         scenarios=tuple(sc.name for sc in chosen))
    for sc in chosen:
        for p in providers:
            report.results.append(run_scenario(p, sc, seed=seed, quick=quick))
    return report
