"""Deterministic fault injection for the VIBe testbed.

The subsystem follows the same attribute discipline as ``sim.metrics``
and ``sim.checker``: ``sim.faults`` defaults to ``None`` and every hook
site in the hardware and engine models is a single ``is None`` check, so
a run with no plan attached is byte-identical to a run built before this
package existed.

* :mod:`repro.faults.plan` — declarative, seedable, JSON-serializable
  fault plans (:class:`FaultSpec` / :class:`FaultPlan`).
* :mod:`repro.faults.injector` — the :class:`FaultInjector` that arms a
  plan against a testbed.
* :mod:`repro.faults.scenarios` — named chaos scenarios.
* :mod:`repro.faults.chaos` — the campaign runner behind ``vibe chaos``.
"""

from .chaos import ChaosReport, ScenarioResult, run_chaos, run_scenario
from .injector import FaultInjector, attach_faults
from .plan import FaultPlan, FaultSpec
from .scenarios import SCENARIOS, ChaosScenario, get_scenario, scenario_names

__all__ = [
    "SCENARIOS",
    "ChaosReport",
    "ChaosScenario",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "ScenarioResult",
    "attach_faults",
    "get_scenario",
    "run_chaos",
    "run_scenario",
    "scenario_names",
]
