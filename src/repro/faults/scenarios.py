"""Named chaos scenarios for ``vibe chaos``.

Each scenario is a :class:`FaultPlan` plus the workload parameters and
the survival contract the campaign checks: on the reliable levels every
message must eventually arrive and the endpoints must recover (possibly
through the VI error-recovery path); on the unreliable level only the
conformance invariants must hold.

``phase`` controls when the plan's clock starts: ``"all"`` plans use
absolute simulation time (the connection handshake is exposed too),
``"data"`` plans are shifted to start once the connection is up, so
they exercise the steady-state data path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..via.constants import Reliability
from .plan import FaultPlan, FaultSpec

__all__ = ["ChaosScenario", "SCENARIOS", "scenario_names", "get_scenario"]


@dataclass(frozen=True)
class ChaosScenario:
    """One named fault campaign entry."""

    name: str
    description: str
    faults: tuple[FaultSpec, ...]
    reliability: Reliability = Reliability.RELIABLE_DELIVERY
    #: "data" shifts the plan to connection-established time;
    #: "all" runs it on the absolute simulation clock
    phase: str = "data"
    size: int = 1024
    count: int = 24
    window: int = 4
    deadline_us: float = 400_000.0
    #: reliable scenarios must deliver every message; unreliable ones
    #: only promise invariant-clean loss
    expect_delivery: bool = True
    #: "stream" = the classic two-node windowed stream;
    #: "cluster" = an N-client serving cluster (repro.faults.cluster_cell);
    #: "overload" = a cluster under retry/admission policies driven past
    #: saturation (repro.faults.overload_cell)
    workload: str = "stream"

    def plan(self, seed: int) -> FaultPlan:
        return FaultPlan(name=self.name, seed=seed, faults=self.faults)


SCENARIOS: tuple[ChaosScenario, ...] = (
    ChaosScenario(
        name="loss_burst",
        description="wire drops everything for 1.5 ms mid-stream",
        faults=(FaultSpec(kind="wire_loss", at=100.0, duration=1500.0),),
    ),
    ChaosScenario(
        name="lossy_wire",
        description="25% random loss from t=0, handshake included",
        faults=(FaultSpec(kind="wire_loss", rate=0.25),),
        phase="all",
        # sustained loss forces several error-recovery cycles; give the
        # redial/backoff machinery room to finish the stream
        deadline_us=1_500_000.0,
    ),
    ChaosScenario(
        name="handshake_loss",
        description="link dead during the first connect attempts",
        # long enough to swallow every provider's first conn_req (client
        # CPU setup ranges 290-4200 us) so the backoff machinery is what
        # establishes the connection
        faults=(FaultSpec(kind="link_down", at=0.0, duration=6000.0),),
        phase="all",
    ),
    ChaosScenario(
        name="link_flap",
        description="client uplink flaps down for 2 ms",
        faults=(FaultSpec(kind="link_down", target="node0.up",
                          at=150.0, duration=2000.0),),
    ),
    ChaosScenario(
        name="blackout_reconnect",
        description="12 ms blackout exhausts RTO; VI error recovery",
        faults=(FaultSpec(kind="link_down", target="node0.up",
                          at=150.0, duration=12_000.0),),
    ),
    ChaosScenario(
        name="corruption_storm",
        description="30% of frames arrive corrupted (CRC drop)",
        faults=(FaultSpec(kind="wire_corrupt", rate=0.3),),
        phase="all",
        deadline_us=1_500_000.0,
    ),
    ChaosScenario(
        name="duplicate_flood",
        description="half the frames are delivered twice",
        faults=(FaultSpec(kind="wire_duplicate", rate=0.5),),
        phase="all",
    ),
    ChaosScenario(
        name="reorder_jitter",
        description="half the frames delayed up to 30 us (reordering)",
        faults=(FaultSpec(kind="wire_reorder", rate=0.5, magnitude=30.0),),
        phase="all",
    ),
    ChaosScenario(
        name="doorbell_drop",
        description="30% of send doorbells lost; scan timer picks up",
        faults=(FaultSpec(kind="doorbell_drop", rate=0.3, magnitude=80.0),),
        phase="all",
    ),
    ChaosScenario(
        name="dma_abort",
        description="15% of data DMAs abort and are retried via RTO",
        faults=(FaultSpec(kind="dma_abort", rate=0.15),),
        phase="all",
    ),
    ChaosScenario(
        name="tlb_storm",
        description="40 NIC TLB flushes, one every 100 us",
        faults=(FaultSpec(kind="tlb_flush", at=100.0, count=40,
                          period=100.0),),
    ),
    ChaosScenario(
        name="cpu_stall",
        description="server host CPU frozen for 3 ms",
        faults=(FaultSpec(kind="cpu_stall", target="node1",
                          at=300.0, duration=3000.0),),
    ),
    ChaosScenario(
        name="many_clients",
        description="5-client cluster; one client's uplink down 2.5 ms "
                    "mid-campaign, the server keeps serving the rest",
        # "c1.up" is the uplink of client node c1 in the star topology;
        # 2.5 ms forces RTO retransmission without exhausting it (no VI
        # error), and the at-offset is relative to the start gate
        faults=(FaultSpec(kind="link_down", target="c1.up",
                          at=400.0, duration=2500.0),),
        workload="cluster",
    ),
    ChaosScenario(
        name="retry_storm",
        description="10x arrival spike on a bounded-queue server; "
                    "post-spike goodput must recover to >=90% of "
                    "pre-spike (no metastable retry storm)",
        faults=(),
        expect_delivery=False,
        workload="overload",
    ),
    ChaosScenario(
        name="slow_server_shed",
        description="server CPU frozen 3 ms mid-run; the bounded queue "
                    "sheds, NAK'd clients back off, nobody hangs",
        # gate-relative, like many_clients; "s0" is the star's server
        faults=(FaultSpec(kind="cpu_stall", target="s0",
                          at=400.0, duration=3000.0),),
        expect_delivery=False,
        workload="overload",
    ),
    ChaosScenario(
        name="partition_retry",
        description="one client's uplink dark 2.5 ms with one tenant "
                    "per client; every spared tenant keeps its SLO",
        faults=(FaultSpec(kind="link_down", target="c1.up",
                          at=400.0, duration=2500.0),),
        expect_delivery=False,
        workload="overload",
    ),
    ChaosScenario(
        name="unreliable_loss",
        description="30% loss on the unreliable level: messages may "
                    "vanish, invariants must hold",
        faults=(FaultSpec(kind="wire_loss", rate=0.3),),
        reliability=Reliability.UNRELIABLE,
        expect_delivery=False,
    ),
)

_BY_NAME = {sc.name: sc for sc in SCENARIOS}


def scenario_names() -> tuple[str, ...]:
    return tuple(sc.name for sc in SCENARIOS)


def get_scenario(name: str) -> ChaosScenario:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown chaos scenario {name!r}; "
                       f"known: {sorted(_BY_NAME)}") from None
