"""The ``many_clients`` chaos cell: a serving cluster under a fault.

The two-node stream in :mod:`repro.faults.chaos` shows one connection
surviving a fault; this cell shows a *server* surviving one — an
N-client cluster (one closed-loop client per node) where the fault plan
takes a single client's uplink down mid-campaign.  The pass contract:

* the server and every untouched client finish their full request
  quota (reliable delivery recovers the faulted client's requests too),
* the server keeps serving during the outage window — completions from
  other clients land while the faulted link is dark,
* every online conformance invariant holds and the quiesce audit is
  clean.

Fault ``at``-offsets are interpreted relative to the cluster's start
gate (the moment the last client finished connecting), mirroring the
``phase="data"`` convention of the stream scenarios, so the window
lands mid-traffic on every provider regardless of handshake cost.
"""

from __future__ import annotations

from ..check.invariants import ConformanceError
from .scenarios import ChaosScenario

__all__ = ["run_cluster_scenario"]

#: one client per non-server node in a star over this many nodes
_NODES = 6


def run_cluster_scenario(provider: str, sc: ChaosScenario, seed: int = 0,
                         quick: bool = False):
    """Run one cluster-workload scenario cell; returns a ScenarioResult."""
    from ..cluster.server import ClusterServer, make_service
    from ..cluster.topology import build_testbed, make_topology
    from ..cluster.workload import LATENCY_BUCKETS, ClusterClient, StartGate
    from ..obs.metrics import Histogram
    from ..vibe.executor import task_seed
    from .chaos import ScenarioResult
    from .injector import attach_faults

    count = min(sc.count, 8) if quick else sc.count
    deadline_us = min(sc.deadline_us, 150_000.0) if quick else sc.deadline_us
    topo = make_topology("star", _NODES, 1)
    n_clients = len(topo.clients)
    faulted = {name for name in topo.clients
               if any(f.target and f.target.startswith(name + ".")
                      for f in sc.faults)}
    tb = build_testbed(provider, topo, seed=seed, check=True)
    plan = sc.plan(seed)
    hist = Histogram("latency_us", LATENCY_BUCKETS)
    gate = StartGate(tb.sim, n_clients)

    server = ClusterServer(
        tb, topo.servers[0], n_clients, n_clients * count,
        window=sc.window, service=make_service("fixed:20"),
        reliability=sc.reliability,
        seed=task_seed(seed, "server"), deadline_us=deadline_us,
    )
    clients = [
        ClusterClient(
            tb, topo.clients[i], i, topo.servers[0],
            n_requests=count, window=sc.window,
            reliability=sc.reliability,
            seed=task_seed(seed, "client", i), hist=hist,
            deadline_us=deadline_us, gate=gate,
        )
        for i in range(n_clients)
    ]

    window_abs = {}

    def arm():
        # start the fault clock at the gate, once every client is up
        yield from gate.released()
        shifted = plan.shifted(tb.now)
        window_abs.update(
            start=min(f.at for f in shifted.faults),
            end=max(f.at + (f.duration or 0.0) for f in shifted.faults),
        )
        attach_faults(tb, shifted)

    procs = [tb.spawn(server.body(), "cluster-server")]
    procs += [tb.spawn(c.body(), f"cluster-client-{c.cid}") for c in clients]
    tb.spawn(arm(), "fault-arm")
    violations: list = []
    try:
        for proc in procs:
            tb.run(proc)
        tb.run()  # drain stray timers so the quiesce audit sees quiet
        tb.checker.check_quiesced(tb)
    except ConformanceError as exc:
        violations.append(str(exc))
    except Exception as exc:  # a crash is also a chaos failure
        violations.append(f"crashed with {type(exc).__name__}: {exc}")

    delivered = sum(c.stats["completed"] for c in clients)
    expected = n_clients * count
    spared = [c for c in clients if c.node not in faulted]
    spared_clean = all(c.stats["completed"] == count for c in spared)
    served_during = sum(
        1 for c in spared for t in c.finish_times
        if window_abs["start"] <= t <= window_abs["end"]
    ) if window_abs else 0
    error = ""
    if not spared_clean:
        error = "a non-faulted client lost requests"
    elif delivered != expected and sc.expect_delivery:
        error = "the faulted client never caught back up"
    t0 = gate.t0 if gate.t0 is not None else 0.0
    finishes = [t for c in clients for t in c.finish_times]
    elapsed = (max(finishes) - t0) if finishes else 0.0
    providers = list(tb.providers.values())
    injector = tb.injector
    ok = (not violations and not error
          and (delivered == expected or not sc.expect_delivery))
    return ScenarioResult(
        scenario=sc.name,
        provider=provider,
        ok=ok,
        delivered=delivered,
        expected=expected,
        duplicates=0,
        recoveries=sum(p.recoveries for p in providers),
        conn_retransmissions=sum(p.conn_retransmissions for p in providers),
        retransmissions=sum(p.engine.retransmissions for p in providers),
        faults_injected=(sum(injector.counters.values())
                         if injector is not None else 0),
        recovery_latency_us=0.0,
        elapsed_us=elapsed,
        goodput_mbs=0.0,
        violations=violations,
        note=error or f"{served_during} responses served during the outage",
    )
