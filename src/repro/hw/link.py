"""Wire model: packets, unidirectional channels, full-duplex links.

A :class:`Channel` models one direction of a physical link: packets are
*serialised* (the channel is held for ``header + size`` at line rate),
then *propagate* (fixed delay, pipelined — the channel frees as soon as
the last bit leaves, so back-to-back packets stream at line rate, which
is what makes the bandwidth benchmarks saturate correctly).

Loss injection (for the unreliable-delivery reliability level) drops a
packet after serialisation, exactly where a SAN would lose it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

import numpy as np

from ..sim import Event, Resource, Simulator
from ..sim.ids import id_space

__all__ = ["Packet", "Burst", "Channel", "Link", "DuplexPort"]

_packet_ids = id_space("packet")


@dataclass
class Packet:
    """One wire packet (a fragment of a VIA message or a control frame).

    ``size`` is the payload byte count on the wire; header overhead is a
    channel property.  ``payload`` carries protocol metadata and real
    data bytes; the wire does not interpret it.
    """

    src: str
    dst: str
    kind: str
    size: int
    payload: Any = None
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))
    #: set by an injected wire_corrupt fault; the receiving NIC's CRC
    #: check drops the packet before any protocol processing
    corrupted: bool = False

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("packet size must be >= 0")


@dataclass
class Burst:
    """A multi-packet record carried through the wire model as one unit.

    The struct-of-arrays staging (numpy ``float64`` arrays, one slot per
    packet) holds the per-packet timestamps a burst-aware observer needs
    without materialising per-packet events: ``t_start``/``t_end`` bound
    each packet's serialisation window and ``t_deliver`` is its arrival
    at the channel sink.  Only :meth:`Channel.plan_burst` fills them.
    """

    packets: list
    t_start: np.ndarray | None = None
    t_end: np.ndarray | None = None
    t_deliver: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.packets)


class Channel:
    """One direction of a link: serialise at line rate, then propagate."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        prop_delay: float,
        header_bytes: int = 0,
        per_packet_cost: float = 0.0,
        loss_rate: float = 0.0,
        rng: random.Random | None = None,
        name: str = "channel",
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive (bytes/us)")
        if prop_delay < 0 or per_packet_cost < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.bandwidth = bandwidth
        self.prop_delay = prop_delay
        self.header_bytes = header_bytes
        self.per_packet_cost = per_packet_cost
        self.loss_rate = loss_rate
        self.rng = rng or random.Random(0)
        self.name = name
        self.sink: Callable[[Packet], None] | None = None
        #: optional shard-boundary hook (see repro.shard.boundary): called
        #: as ``divert(packet, deliver_at)`` for every scheduled delivery;
        #: returning True means the packet left this shard as a wire
        #: record instead of being delivered locally.  None (the default)
        #: costs one attribute load per delivery.
        self.shard_divert: Callable[[Packet, float], bool] | None = None
        self._line = Resource(sim, capacity=1)
        #: virtual line occupancy left behind by an arithmetic burst:
        #: packet-level senders arriving before this instant wait it out
        #: (FIFO, by wait-start order), exactly as if the line resource
        #: had been held for real.  Stays 0.0 in pure packet mode.
        self._ff_busy_until = 0.0
        self.sent_packets = 0
        self.dropped_packets = 0
        self.delivered_packets = 0
        self.dup_packets = 0
        self.sent_bytes = 0

    @property
    def queue_depth(self) -> int:
        """Packets parked behind the line (the sender-side FIFO depth)."""
        return self._line.queued

    def serialization_time(self, packet: Packet) -> float:
        return self.per_packet_cost + (packet.size + self.header_bytes) / self.bandwidth

    def send(self, packet: Packet) -> Generator[Event, Any, None]:
        """Process fragment: occupy the line while the packet serialises.

        Returns once the last bit is on the wire; delivery to the sink
        happens ``prop_delay`` later without holding the line.
        """
        if self.sink is None:
            raise RuntimeError(f"{self.name}: no sink attached")
        # hot path: one locals load for the simulator, observers read
        # once — the armed-but-dormant path costs zero extra attribute
        # lookups per packet beyond the single _ff_busy_until compare
        sim = self.sim
        busy = self._ff_busy_until
        if busy > 0.0:
            wait = busy - sim._now
            if wait > 0.0:
                yield sim.timeout(wait)
        yield self._line.request()
        try:
            yield sim.timeout(self.serialization_time(packet))
        finally:
            self._line.release()
        self.sent_packets += 1
        self.sent_bytes += packet.size
        tracer = sim.tracer
        if tracer is not None:
            sim.trace("wire", "serialized", self.name, pkt=packet.pkt_id,
                      kind=packet.kind, size=packet.size)
        if self.loss_rate and self.rng.random() < self.loss_rate:
            self.dropped_packets += 1
            sim.trace("wire", "dropped", self.name, pkt=packet.pkt_id)
            return
        delay = self.prop_delay
        faults = sim.faults
        if faults is not None:
            fate, extra = faults.wire_fate(self, packet)
            if fate == "drop":
                self.dropped_packets += 1
                sim.trace("wire", "fault_dropped", self.name,
                          pkt=packet.pkt_id)
                return
            delay += extra
            if fate == "corrupt":
                packet.corrupted = True
                sim.trace("wire", "fault_corrupted", self.name,
                          pkt=packet.pkt_id)
            elif fate == "dup":
                # the duplicate trails the original by one frame time
                self.dup_packets += 1
                sim.trace("wire", "fault_duplicated", self.name,
                          pkt=packet.pkt_id)
                self._schedule_delivery(
                    packet, delay + self.serialization_time(packet))
        self._schedule_delivery(packet, delay)

    def _schedule_delivery(self, packet: Packet, delay: float) -> None:
        """Schedule one delivery ``delay`` from now (the boundary hook).

        ``deliver_at`` is computed as ``now + delay`` — the *same* float
        operation :meth:`Simulator.timeout` performs — so an exported
        wire record carries the exact timestamp the local delivery event
        would have fired at.
        """
        sim = self.sim
        divert = self.shard_divert
        if divert is not None and divert(packet, sim._now + delay):
            # the packet crossed a shard cut: it counts as delivered by
            # this channel (the peer shard replays the sink side)
            self.delivered_packets += 1
            return
        deliver = sim.timeout(delay, packet)
        deliver.callbacks.append(self._deliver)

    def _deliver(self, event: Event) -> None:
        assert self.sink is not None
        self.delivered_packets += 1
        sim = self.sim
        if sim.tracer is not None:
            sim.trace("wire", "delivered", self.name,
                      pkt=event.value.pkt_id)
        self.sink(event.value)

    # -- burst (flow-level) path ------------------------------------------
    def plan_burst(self, emit_times, sizes,
                   line_free: float = 0.0) -> tuple:
        """Arithmetic serialisation schedule for a back-to-back burst.

        Pure computation (no state touched): given the instants each
        packet becomes available (``emit_times``) and its payload size,
        returns ``(starts, ends, delivers)`` numpy arrays — when each
        packet's serialisation begins and ends and when it reaches the
        sink — reproducing exactly what per-packet :meth:`send` calls
        would compute on an initially-free line (or one busy until
        ``line_free``).  The per-packet serialisation times are
        vectorised (bitwise-identical to :meth:`serialization_time`);
        the FIFO-drain recurrence ``start_k = max(emit_k, end_{k-1})``
        runs as an exact scalar loop so every timestamp reproduces the
        event path's float operations bit for bit.
        """
        sizes = np.asarray(sizes, dtype=np.float64)
        ser = self.per_packet_cost + (sizes + self.header_bytes) / self.bandwidth
        n = len(sizes)
        starts = np.empty(n, dtype=np.float64)
        ends = np.empty(n, dtype=np.float64)
        prev_end = line_free
        for k, (e, s) in enumerate(zip(emit_times, ser.tolist())):
            st = e if e > prev_end else prev_end
            prev_end = st + s
            starts[k] = st
            ends[k] = prev_end
        return starts, ends, ends + self.prop_delay

    def note_burst(self, n: int, nbytes: int, busy_until: float,
                   delivered: bool = True) -> None:
        """Commit an arithmetic burst: bulk counters + virtual occupancy."""
        self.sent_packets += n
        self.sent_bytes += nbytes
        if delivered:
            self.delivered_packets += n
        if busy_until > self._ff_busy_until:
            self._ff_busy_until = busy_until

    def send_burst(self, burst: "Burst | list[Packet]") -> Generator[Event, Any, None]:
        """Process fragment: serialise a whole burst in O(1) line events.

        The line is held once for the burst; per-packet serialisation
        windows and delivery instants are computed arithmetically
        (:meth:`plan_burst`) and delivery callbacks are scheduled up
        front, so the event count is one line hold plus one delivery per
        packet instead of a request/timeout/release chain each.  Falls
        back to packet-at-a-time :meth:`send` whenever an observer needs
        per-packet treatment: a tracer, an armed fault injector, or a
        lossy wire.
        """
        packets = burst.packets if isinstance(burst, Burst) else burst
        if not packets:
            return
        sim = self.sim
        if (self.loss_rate or sim.faults is not None
                or sim.tracer is not None):
            for packet in packets:
                yield from self.send(packet)
            return
        if self.sink is None:
            raise RuntimeError(f"{self.name}: no sink attached")
        busy = self._ff_busy_until
        if busy > 0.0:
            wait = busy - sim._now
            if wait > 0.0:
                yield sim.timeout(wait)
        yield self._line.request()
        try:
            now = sim._now
            sizes = [p.size for p in packets]
            starts, ends, delivers = self.plan_burst(
                np.full(len(packets), now), sizes)
            if isinstance(burst, Burst):
                burst.t_start, burst.t_end, burst.t_deliver = (
                    starts, ends, delivers)
            for packet, at in zip(packets, delivers.tolist()):
                self._schedule_delivery(packet, at - now)
            yield sim.timeout(float(ends[-1]) - now)
        finally:
            self._line.release()
        self.sent_packets += len(packets)
        self.sent_bytes += sum(sizes)


class Link:
    """A full-duplex link: an independent channel per direction."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        prop_delay: float,
        header_bytes: int = 0,
        per_packet_cost: float = 0.0,
        loss_rate: float = 0.0,
        seed: int = 0,
        name: str = "link",
    ) -> None:
        self.name = name
        self.forward = Channel(
            sim, bandwidth, prop_delay, header_bytes, per_packet_cost,
            loss_rate, random.Random(seed * 2 + 1), f"{name}.fwd",
        )
        self.backward = Channel(
            sim, bandwidth, prop_delay, header_bytes, per_packet_cost,
            loss_rate, random.Random(seed * 2 + 2), f"{name}.bwd",
        )


class DuplexPort:
    """A NIC's attachment point: one outgoing and one incoming channel."""

    def __init__(self, out_channel: Channel, name: str = "port") -> None:
        self.out_channel = out_channel
        self.name = name

    def send(self, packet: Packet) -> Generator[Event, Any, None]:
        yield from self.out_channel.send(packet)
