"""Wire model: packets, unidirectional channels, full-duplex links.

A :class:`Channel` models one direction of a physical link: packets are
*serialised* (the channel is held for ``header + size`` at line rate),
then *propagate* (fixed delay, pipelined — the channel frees as soon as
the last bit leaves, so back-to-back packets stream at line rate, which
is what makes the bandwidth benchmarks saturate correctly).

Loss injection (for the unreliable-delivery reliability level) drops a
packet after serialisation, exactly where a SAN would lose it.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from ..sim import Event, Resource, Simulator

__all__ = ["Packet", "Channel", "Link", "DuplexPort"]

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One wire packet (a fragment of a VIA message or a control frame).

    ``size`` is the payload byte count on the wire; header overhead is a
    channel property.  ``payload`` carries protocol metadata and real
    data bytes; the wire does not interpret it.
    """

    src: str
    dst: str
    kind: str
    size: int
    payload: Any = None
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))
    #: set by an injected wire_corrupt fault; the receiving NIC's CRC
    #: check drops the packet before any protocol processing
    corrupted: bool = False

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("packet size must be >= 0")


class Channel:
    """One direction of a link: serialise at line rate, then propagate."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        prop_delay: float,
        header_bytes: int = 0,
        per_packet_cost: float = 0.0,
        loss_rate: float = 0.0,
        rng: random.Random | None = None,
        name: str = "channel",
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive (bytes/us)")
        if prop_delay < 0 or per_packet_cost < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.bandwidth = bandwidth
        self.prop_delay = prop_delay
        self.header_bytes = header_bytes
        self.per_packet_cost = per_packet_cost
        self.loss_rate = loss_rate
        self.rng = rng or random.Random(0)
        self.name = name
        self.sink: Callable[[Packet], None] | None = None
        self._line = Resource(sim, capacity=1)
        self.sent_packets = 0
        self.dropped_packets = 0
        self.delivered_packets = 0
        self.dup_packets = 0
        self.sent_bytes = 0

    @property
    def queue_depth(self) -> int:
        """Packets parked behind the line (the sender-side FIFO depth)."""
        return self._line.queued

    def serialization_time(self, packet: Packet) -> float:
        return self.per_packet_cost + (packet.size + self.header_bytes) / self.bandwidth

    def send(self, packet: Packet) -> Generator[Event, Any, None]:
        """Process fragment: occupy the line while the packet serialises.

        Returns once the last bit is on the wire; delivery to the sink
        happens ``prop_delay`` later without holding the line.
        """
        if self.sink is None:
            raise RuntimeError(f"{self.name}: no sink attached")
        yield self._line.request()
        try:
            yield self.sim.timeout(self.serialization_time(packet))
        finally:
            self._line.release()
        self.sent_packets += 1
        self.sent_bytes += packet.size
        self.sim.trace("wire", "serialized", self.name, pkt=packet.pkt_id,
                       kind=packet.kind, size=packet.size)
        if self.loss_rate and self.rng.random() < self.loss_rate:
            self.dropped_packets += 1
            self.sim.trace("wire", "dropped", self.name, pkt=packet.pkt_id)
            return
        delay = self.prop_delay
        faults = self.sim.faults
        if faults is not None:
            fate, extra = faults.wire_fate(self, packet)
            if fate == "drop":
                self.dropped_packets += 1
                self.sim.trace("wire", "fault_dropped", self.name,
                               pkt=packet.pkt_id)
                return
            delay += extra
            if fate == "corrupt":
                packet.corrupted = True
                self.sim.trace("wire", "fault_corrupted", self.name,
                               pkt=packet.pkt_id)
            elif fate == "dup":
                # the duplicate trails the original by one frame time
                self.dup_packets += 1
                self.sim.trace("wire", "fault_duplicated", self.name,
                               pkt=packet.pkt_id)
                dup = self.sim.timeout(
                    delay + self.serialization_time(packet), packet)
                dup.callbacks.append(self._deliver)
        deliver = self.sim.timeout(delay, packet)
        deliver.callbacks.append(self._deliver)

    def _deliver(self, event: Event) -> None:
        assert self.sink is not None
        self.delivered_packets += 1
        self.sim.trace("wire", "delivered", self.name,
                       pkt=event.value.pkt_id)
        self.sink(event.value)


class Link:
    """A full-duplex link: an independent channel per direction."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        prop_delay: float,
        header_bytes: int = 0,
        per_packet_cost: float = 0.0,
        loss_rate: float = 0.0,
        seed: int = 0,
        name: str = "link",
    ) -> None:
        self.name = name
        self.forward = Channel(
            sim, bandwidth, prop_delay, header_bytes, per_packet_cost,
            loss_rate, random.Random(seed * 2 + 1), f"{name}.fwd",
        )
        self.backward = Channel(
            sim, bandwidth, prop_delay, header_bytes, per_packet_cost,
            loss_rate, random.Random(seed * 2 + 2), f"{name}.bwd",
        )


class DuplexPort:
    """A NIC's attachment point: one outgoing and one incoming channel."""

    def __init__(self, out_channel: Channel, name: str = "port") -> None:
        self.out_channel = out_channel
        self.name = name

    def send(self, packet: Packet) -> Generator[Event, Any, None]:
        yield from self.out_channel.send(packet)
