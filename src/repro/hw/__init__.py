"""Simulated hardware substrate: memory, CPU, NIC, links, fabrics."""

from .cpu import CpuActor, HostCPU, Rusage
from .link import Channel, DuplexPort, Link, Packet
from .memory import (
    PAGE_SIZE,
    MemoryError_,
    MemorySystem,
    PageTable,
    ProtectionError,
    VirtualRegion,
    page_span,
)
from .network import (
    GIGANET,
    GIGE,
    MYRINET,
    Fabric,
    HostParams,
    NetworkParams,
    Switch,
)
from .nic import NIC, DMAEngine, TranslationCache
from .node import Node
from .tiered import TieredFabric

__all__ = [
    "Channel",
    "CpuActor",
    "DMAEngine",
    "DuplexPort",
    "Fabric",
    "GIGANET",
    "GIGE",
    "HostCPU",
    "HostParams",
    "Link",
    "MYRINET",
    "MemoryError_",
    "MemorySystem",
    "NIC",
    "NetworkParams",
    "Node",
    "PAGE_SIZE",
    "Packet",
    "PageTable",
    "ProtectionError",
    "Rusage",
    "Switch",
    "TieredFabric",
    "TranslationCache",
    "VirtualRegion",
    "page_span",
]
