"""Fabric: nodes wired through a switch, with per-network presets.

The paper's testbed ran the same Pentium-II hosts on three fabrics:
Myrinet (LANai 4.3) for Berkeley VIA, Packet Engines GNIC-II Gigabit
Ethernet for M-VIA, and Giganet cLAN5000 for cLAN VIA.  The presets
below encode the fabric-level differences (line rate, MTU, framing
overhead, switch discipline); provider-level differences live in
``repro.providers``.

Switch model: every packet traverses sender-uplink -> switch ->
receiver-downlink, and every downlink sits behind an :class:`OutputPort`
— the switch's per-destination FIFO queue.  The uplink serialises at
line rate (this is the single-flow bandwidth bottleneck).
Store-and-forward fabrics (Ethernet) serialise again on the downlink,
which adds one frame time to latency — visible in the paper's GigE
latency numbers — and tail-drop when the port's finite frame buffer
overflows.  Cut-through fabrics (Myrinet, Giganet) forward a lone frame
with only a small fixed switch latency plus a residual forwarding skew
(the downlink transmission pipelines with the uplink reception), but
the downlink wire still drains at line rate: when several senders
converge on one destination the port accumulates *backlog* and frames
queue behind it (the wormhole-backpressure analog), so multi-sender
traffic serialises at line rate instead of the old infinite-rate
downlink.  Uncontended traffic — in particular every two-node run — is
byte-identical to the pre-contention model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Generator

import numpy as np

from ..sim import Event, Simulator
from .link import Channel, DuplexPort, Packet
from .node import Node

__all__ = ["NetworkParams", "HostParams", "OutputPort", "Switch", "Fabric",
           "MYRINET", "GIGE", "GIGANET"]

#: Rate multiple at which a cut-through port *completes* a frame once its
#: bits have arrived from the uplink: the residual crossbar forwarding
#: skew.  The downlink transmission overlaps the uplink reception, so a
#: lone frame is only charged this skew (~0.1% of a line frame time);
#: line-rate occupancy under contention is accounted separately by
#: :class:`OutputPort` backlog tracking.
_CUT_THROUGH_SKEW = 1000.0


@dataclass(frozen=True)
class NetworkParams:
    """Fabric-level characteristics (time in µs, rates in bytes/µs)."""

    name: str
    bandwidth: float            # line rate
    prop_delay: float           # one-way cable propagation per hop
    mtu: int                    # max payload bytes per wire packet
    header_bytes: int           # framing overhead per packet
    per_packet_cost: float      # fixed serialisation overhead per packet
    switch_latency: float       # fixed forwarding delay in the switch
    store_and_forward: bool     # Ethernet-style full-frame buffering
    loss_rate: float = 0.0      # injected drop probability (per packet)
    #: switch output-port buffer, in MTU-sized frames.  Store-and-forward
    #: ports tail-drop past this depth; cut-through ports count frames
    #: beyond it as backpressured (wormhole flow control never drops).
    port_buffer_frames: int = 64

    def with_loss(self, loss_rate: float) -> "NetworkParams":
        return replace(self, loss_rate=loss_rate)

    def with_mtu(self, mtu: int) -> "NetworkParams":
        if mtu < 64:
            raise ValueError("mtu must be >= 64 bytes")
        return replace(self, mtu=mtu)

    def with_port_buffer(self, frames: int) -> "NetworkParams":
        if frames < 1:
            raise ValueError("port buffer must hold at least one frame")
        return replace(self, port_buffer_frames=frames)


@dataclass(frozen=True)
class HostParams:
    """Host characteristics — identical across the paper's three testbeds."""

    mem_copy_bw: float = 90.0           # host memcpy throughput (MB/s);
                                        # Pentium-II era copies miss cache
    dma_bandwidth: float = 132.0        # 32-bit/33 MHz PCI effective rate
    dma_per_transfer_cost: float = 0.25 # PCI transaction setup
    tlb_entries: int = 64               # NIC translation-cache entries
    page_size: int = 4096


# -- presets calibrated to the paper's testbed ---------------------------
MYRINET = NetworkParams(
    name="myrinet",
    bandwidth=160.0,       # 1.28 Gb/s LANai 4.3 generation
    prop_delay=0.2,
    mtu=32768,
    header_bytes=8,
    per_packet_cost=0.2,
    switch_latency=0.5,
    store_and_forward=False,
)

GIGE = NetworkParams(
    name="gige",
    bandwidth=125.0,       # 1 Gb/s
    prop_delay=0.3,
    mtu=1500,
    header_bytes=26,       # Ethernet + IPC framing
    per_packet_cost=0.6,
    switch_latency=2.0,
    store_and_forward=True,
)

GIGANET = NetworkParams(
    name="giganet",
    bandwidth=112.0,       # 1.25 Gbaud cLAN, 8b/10b coded
    prop_delay=0.2,
    mtu=65536,
    header_bytes=8,
    per_packet_cost=0.15,
    switch_latency=0.4,
    store_and_forward=False,
)


class OutputPort:
    """One switch output port: a FIFO queue in front of a downlink.

    The port is where multi-sender contention becomes visible.  Two
    disciplines, chosen by ``params.store_and_forward``:

    * **Store-and-forward** (Ethernet): the downlink channel itself
      serialises the full frame, so queueing delay emerges from the
      channel's line resource.  The port adds the *finite buffer*: a
      frame arriving to find ``port_buffer_frames`` predecessors parked
      behind the line is tail-dropped, deterministically (counted in
      :attr:`drops`, traced as ``port_drop``).  Recovering dropped
      frames is the reliability layer's job — arm it via
      ``Testbed(loss_possible=True)`` on contended topologies.

    * **Cut-through** (Myrinet, Giganet): the downlink channel only
      charges the residual forwarding skew (``_CUT_THROUGH_SKEW`` times
      line rate), because a lone frame's downlink transmission pipelines
      with its uplink reception.  The wire still drains one frame per
      ``(size + header) / bandwidth``, so the port tracks *backlog* —
      outstanding wire time, drained in real time and topped up by each
      arrival.  A frame arriving to positive backlog waits it out before
      touching the channel: concurrent senders therefore serialise at
      line rate.  A single uplink can never build backlog (its own
      serialisation spaces arrivals at least one frame-time apart), so
      uncontended paths take zero extra simulation events and stay
      byte-identical to the pre-contention model.  Backlog beyond the
      buffer is counted as :attr:`backpressured` (wormhole flow control
      spills upstream rather than dropping).
    """

    def __init__(self, sim: Simulator, channel: Channel,
                 params: NetworkParams, name: str = "port") -> None:
        self.sim = sim
        self.channel = channel
        self.name = name
        self.cut_through = not params.store_and_forward
        self.capacity_frames = params.port_buffer_frames
        self._line_rate = params.bandwidth
        self._header_bytes = params.header_bytes
        #: the finite buffer expressed as wire time (cut-through only)
        self._buffer_us = (params.port_buffer_frames
                           * (params.mtu + params.header_bytes)
                           / params.bandwidth)
        self._backlog = 0.0       # outstanding wire time at _last_at
        self._last_at = 0.0       # timestamp of the last arrival
        self.forwarded = 0
        self.contended = 0        # frames that waited out backlog
        self.backpressured = 0    # frames past the buffer (cut-through)
        self.drops = 0            # frames tail-dropped (store-and-forward)
        self.max_backlog_us = 0.0

    def forward(self, packet: Packet) -> Generator[Event, Any, None]:
        """Process fragment: queue the packet through the port."""
        self.forwarded += 1
        # hot path: the simulator is read once; observer hooks (trace)
        # only dereference again on the rare contended/dropped branches
        sim = self.sim
        if self.cut_through:
            now = sim._now
            backlog = self._backlog - (now - self._last_at)
            if backlog < 0.0:
                backlog = 0.0
            self._last_at = now
            self._backlog = backlog + (
                (packet.size + self._header_bytes) / self._line_rate)
            if backlog > 0.0:
                self.contended += 1
                if backlog > self.max_backlog_us:
                    self.max_backlog_us = backlog
                if backlog > self._buffer_us:
                    self.backpressured += 1
                    sim.trace("wire", "port_backpressure", self.name,
                              pkt=packet.pkt_id)
                yield sim.timeout(backlog)
        elif self.channel.queue_depth >= self.capacity_frames:
            self.drops += 1
            sim.trace("wire", "port_drop", self.name,
                      pkt=packet.pkt_id)
            return
        yield from self.channel.send(packet)

    # -- burst (flow-level) path ------------------------------------------
    def plan_burst(self, arrive_times, sizes):
        """Arithmetic replay of :meth:`forward` for a batch of arrivals.

        Pure computation: walks the cut-through backlog recurrence (or
        the store-and-forward pass-through) over ``arrive_times`` without
        touching port state and returns ``(departs, commit)`` where
        ``departs[k]`` is when frame ``k`` reaches the downlink channel
        and ``commit()`` applies the counter and backlog-state deltas —
        call it only once the whole burst is accepted.  Returns ``None``
        when the arrivals interleave with frames the port has already
        accounted ahead of them (``_last_at`` past the first arrival):
        an out-of-order merge must fall back to packet granularity.
        """
        n = len(sizes)
        if not self.cut_through:
            # store-and-forward: the port itself adds no delay — queueing
            # emerges from the downlink line; finite-buffer tail-drop
            # cannot trigger on an uncontended burst (the caller bounds
            # in-flight frames below capacity_frames before planning)
            def commit() -> None:
                self.forwarded += n

            return np.asarray(arrive_times, dtype=np.float64), commit
        if self._last_at > arrive_times[0]:
            return None
        backlog = self._backlog
        last = self._last_at
        contended = 0
        backpressured = 0
        max_backlog = self.max_backlog_us
        departs = np.asarray(arrive_times, dtype=np.float64).copy()
        rate = self._line_rate
        hdr = self._header_bytes
        buffer_us = self._buffer_us
        for k, (t, size) in enumerate(zip(arrive_times, sizes)):
            b = backlog - (t - last)
            if b < 0.0:
                b = 0.0
            last = t
            backlog = b + (size + hdr) / rate
            if b > 0.0:
                contended += 1
                if b > max_backlog:
                    max_backlog = b
                if b > buffer_us:
                    backpressured += 1
                departs[k] = t + b

        def commit() -> None:
            self.forwarded += n
            self._backlog = backlog
            self._last_at = last
            self.contended += contended
            self.backpressured += backpressured
            self.max_backlog_us = max_backlog

        return departs, commit


def _by_src(packet: Packet) -> str:
    return packet.src


class _SourceArbiter:
    """Deterministic same-instant arrival ordering for a switch.

    Several channels can deliver packets to one switch at the exact same
    simulated instant (symmetric topologies with uniform or bursty
    arrivals make this the common case, not a corner).  Without
    arbitration the packets would be forwarded in heap-insertion order —
    a sequence-number accident that is stable for a single run but *not*
    reproducible when the same workload is partitioned across shards
    (:mod:`repro.shard`), because each shard numbers its events
    independently.  The arbiter makes the tie-break a function of packet
    *content*: arrivals at one instant are batched and dispatched in
    ``packet.src`` order once every ordinary (priority-0) event at that
    instant has run.

    The sort is total: a single channel can never deliver two packets at
    the same instant (its serialisation spaces them apart), and every
    channel feeding a given switch carries a disjoint set of source
    nodes, so ``(instant, switch, src)`` uniquely identifies an arrival.

    Cost: one priority-1 flush event per (switch, instant) with at least
    one arrival.
    """

    __slots__ = ("sim", "dispatch", "_pending")

    def __init__(self, sim: Simulator, dispatch) -> None:
        self.sim = sim
        self.dispatch = dispatch
        self._pending: list[Packet] = []

    def submit(self, packet: Packet) -> None:
        pending = self._pending
        if not pending:
            # first arrival this instant: schedule the flush *after* all
            # priority-0 events at the same timestamp, so every arrival
            # (local deliveries and cross-shard injections alike) joins
            # this batch before it is ordered
            flush = Event(self.sim)
            flush.callbacks.append(self._flush)
            flush.succeed(priority=1)
        pending.append(packet)

    def _flush(self, _event: Event) -> None:
        pending = self._pending
        self._pending = []
        if len(pending) > 1:
            pending.sort(key=_by_src)
        dispatch = self.dispatch
        for packet in pending:
            dispatch(packet)


class Switch:
    """A single switch forwarding between node ports by destination name."""

    def __init__(self, sim: Simulator, params: NetworkParams) -> None:
        self.sim = sim
        self.params = params
        self._downlinks: dict[str, Channel] = {}
        self._ports: dict[str, OutputPort] = {}
        self._arbiter = _SourceArbiter(sim, self._dispatch)
        self.forwarded = 0

    def attach(self, node_name: str, downlink: Channel) -> None:
        self._downlinks[node_name] = downlink
        self._ports[node_name] = OutputPort(
            self.sim, downlink, self.params, name=f"{node_name}.downport")

    def port(self, node_name: str) -> OutputPort:
        return self._ports[node_name]

    def receive(self, packet: Packet) -> None:
        """Sink for uplink channels: forward after the switch latency."""
        if packet.dst not in self._ports:
            raise KeyError(f"switch has no port for destination {packet.dst!r}")
        self._arbiter.submit(packet)

    def _dispatch(self, packet: Packet) -> None:
        self.forwarded += 1
        port = self._ports[packet.dst]
        self.sim.process(self._forward(packet, port), name=f"fwd-{packet.pkt_id}")

    def _forward(self, packet: Packet, port: OutputPort):
        yield self.sim.timeout(self.params.switch_latency)
        yield from port.forward(packet)


class Fabric:
    """A complete testbed: N nodes on one switch."""

    def __init__(
        self,
        sim: Simulator,
        network: NetworkParams,
        node_names: tuple[str, ...] = ("node0", "node1"),
        host: HostParams = HostParams(),
        seed: int = 0,
    ) -> None:
        if len(set(node_names)) != len(node_names):
            raise ValueError("node names must be unique")
        self.sim = sim
        self.network = network
        self.host = host
        self.switch = Switch(sim, network)
        self.nodes: dict[str, Node] = {}
        down_bw = network.bandwidth
        down_hdr = network.header_bytes
        down_ppc = network.per_packet_cost
        if not network.store_and_forward:
            # Cut-through: the downlink channel charges only the residual
            # forwarding skew; line-rate occupancy under contention is
            # the OutputPort's job (see OutputPort docstring).
            down_bw *= _CUT_THROUGH_SKEW
            down_hdr = 0
            down_ppc = 0.0
        for i, name in enumerate(node_names):
            node = Node(
                sim,
                name,
                mem_copy_bw=host.mem_copy_bw,
                dma_bandwidth=host.dma_bandwidth,
                dma_per_transfer_cost=host.dma_per_transfer_cost,
                tlb_entries=host.tlb_entries,
                page_size=host.page_size,
            )
            uplink = Channel(
                sim, network.bandwidth, network.prop_delay, network.header_bytes,
                network.per_packet_cost, network.loss_rate,
                rng=__import__("random").Random(seed * 100 + i * 2),
                name=f"{name}.up",
            )
            downlink = Channel(
                sim, down_bw, network.prop_delay, down_hdr, down_ppc,
                0.0,  # loss is injected on the uplink only (once per path)
                name=f"{name}.down",
            )
            uplink.sink = self.switch.receive
            downlink.sink = node.nic.deliver
            node.nic.attach_port(DuplexPort(uplink, name=f"{name}.port"))
            self.switch.attach(name, downlink)
            self.nodes[name] = node

    def node(self, name: str) -> Node:
        return self.nodes[name]

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(self.nodes)
