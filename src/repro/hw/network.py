"""Fabric: nodes wired through a switch, with per-network presets.

The paper's testbed ran the same Pentium-II hosts on three fabrics:
Myrinet (LANai 4.3) for Berkeley VIA, Packet Engines GNIC-II Gigabit
Ethernet for M-VIA, and Giganet cLAN5000 for cLAN VIA.  The presets
below encode the fabric-level differences (line rate, MTU, framing
overhead, switch discipline); provider-level differences live in
``repro.providers``.

Switch model: every packet traverses sender-uplink -> switch ->
receiver-downlink.  The uplink serialises at line rate (this is the
bandwidth bottleneck).  Store-and-forward fabrics (Ethernet) serialise
again on the downlink, which adds one frame time to latency — visible in
the paper's GigE latency numbers.  Cut-through fabrics (Myrinet,
Giganet) forward with only a small fixed switch latency; the downlink is
modelled at an effectively infinite rate so no second serialisation is
charged (wormhole backpressure across multiple contending senders is out
of scope for the two-node VIBe testbed and documented as such).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..sim import Simulator
from .link import Channel, DuplexPort, Packet
from .node import Node

__all__ = ["NetworkParams", "HostParams", "Switch", "Fabric",
           "MYRINET", "GIGE", "GIGANET"]

_CUT_THROUGH_SPEEDUP = 1000.0  # downlink rate multiplier for cut-through


@dataclass(frozen=True)
class NetworkParams:
    """Fabric-level characteristics (time in µs, rates in bytes/µs)."""

    name: str
    bandwidth: float            # line rate
    prop_delay: float           # one-way cable propagation per hop
    mtu: int                    # max payload bytes per wire packet
    header_bytes: int           # framing overhead per packet
    per_packet_cost: float      # fixed serialisation overhead per packet
    switch_latency: float       # fixed forwarding delay in the switch
    store_and_forward: bool     # Ethernet-style full-frame buffering
    loss_rate: float = 0.0      # injected drop probability (per packet)

    def with_loss(self, loss_rate: float) -> "NetworkParams":
        return replace(self, loss_rate=loss_rate)

    def with_mtu(self, mtu: int) -> "NetworkParams":
        if mtu < 64:
            raise ValueError("mtu must be >= 64 bytes")
        return replace(self, mtu=mtu)


@dataclass(frozen=True)
class HostParams:
    """Host characteristics — identical across the paper's three testbeds."""

    mem_copy_bw: float = 90.0           # host memcpy throughput (MB/s);
                                        # Pentium-II era copies miss cache
    dma_bandwidth: float = 132.0        # 32-bit/33 MHz PCI effective rate
    dma_per_transfer_cost: float = 0.25 # PCI transaction setup
    tlb_entries: int = 64               # NIC translation-cache entries
    page_size: int = 4096


# -- presets calibrated to the paper's testbed ---------------------------
MYRINET = NetworkParams(
    name="myrinet",
    bandwidth=160.0,       # 1.28 Gb/s LANai 4.3 generation
    prop_delay=0.2,
    mtu=32768,
    header_bytes=8,
    per_packet_cost=0.2,
    switch_latency=0.5,
    store_and_forward=False,
)

GIGE = NetworkParams(
    name="gige",
    bandwidth=125.0,       # 1 Gb/s
    prop_delay=0.3,
    mtu=1500,
    header_bytes=26,       # Ethernet + IPC framing
    per_packet_cost=0.6,
    switch_latency=2.0,
    store_and_forward=True,
)

GIGANET = NetworkParams(
    name="giganet",
    bandwidth=112.0,       # 1.25 Gbaud cLAN, 8b/10b coded
    prop_delay=0.2,
    mtu=65536,
    header_bytes=8,
    per_packet_cost=0.15,
    switch_latency=0.4,
    store_and_forward=False,
)


class Switch:
    """A single switch forwarding between node ports by destination name."""

    def __init__(self, sim: Simulator, params: NetworkParams) -> None:
        self.sim = sim
        self.params = params
        self._downlinks: dict[str, Channel] = {}
        self.forwarded = 0

    def attach(self, node_name: str, downlink: Channel) -> None:
        self._downlinks[node_name] = downlink

    def receive(self, packet: Packet) -> None:
        """Sink for uplink channels: forward after the switch latency."""
        downlink = self._downlinks.get(packet.dst)
        if downlink is None:
            raise KeyError(f"switch has no port for destination {packet.dst!r}")
        self.forwarded += 1
        self.sim.process(self._forward(packet, downlink), name=f"fwd-{packet.pkt_id}")

    def _forward(self, packet: Packet, downlink: Channel):
        yield self.sim.timeout(self.params.switch_latency)
        yield from downlink.send(packet)


class Fabric:
    """A complete testbed: N nodes on one switch."""

    def __init__(
        self,
        sim: Simulator,
        network: NetworkParams,
        node_names: tuple[str, ...] = ("node0", "node1"),
        host: HostParams = HostParams(),
        seed: int = 0,
    ) -> None:
        if len(set(node_names)) != len(node_names):
            raise ValueError("node names must be unique")
        self.sim = sim
        self.network = network
        self.host = host
        self.switch = Switch(sim, network)
        self.nodes: dict[str, Node] = {}
        down_bw = network.bandwidth
        down_hdr = network.header_bytes
        down_ppc = network.per_packet_cost
        if not network.store_and_forward:
            # Cut-through: no second serialisation charge (see module doc).
            down_bw *= _CUT_THROUGH_SPEEDUP
            down_hdr = 0
            down_ppc = 0.0
        for i, name in enumerate(node_names):
            node = Node(
                sim,
                name,
                mem_copy_bw=host.mem_copy_bw,
                dma_bandwidth=host.dma_bandwidth,
                dma_per_transfer_cost=host.dma_per_transfer_cost,
                tlb_entries=host.tlb_entries,
                page_size=host.page_size,
            )
            uplink = Channel(
                sim, network.bandwidth, network.prop_delay, network.header_bytes,
                network.per_packet_cost, network.loss_rate,
                rng=__import__("random").Random(seed * 100 + i * 2),
                name=f"{name}.up",
            )
            downlink = Channel(
                sim, down_bw, network.prop_delay, down_hdr, down_ppc,
                0.0,  # loss is injected on the uplink only (once per path)
                name=f"{name}.down",
            )
            uplink.sink = self.switch.receive
            downlink.sink = node.nic.deliver
            node.nic.attach_port(DuplexPort(uplink, name=f"{name}.port"))
            self.switch.attach(name, downlink)
            self.nodes[name] = node

    def node(self, name: str) -> Node:
        return self.nodes[name]

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(self.nodes)
