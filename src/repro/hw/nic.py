"""Network interface card model.

The NIC is the active component whose design choices the paper probes:

- a **translation cache** (software TLB on the NIC): Berkeley VIA keeps
  translation tables in host memory and caches entries on the LANai; a
  miss costs a DMA read of the table entry across the I/O bus.  The
  buffer-reuse benchmark (Fig. 5) measures exactly this cache.
- a **DMA engine** with finite bandwidth shared by all transfers across
  the I/O bus (descriptor fetches, data movement, table-entry fetches).
- **doorbells** — rung by the host; how expensive ringing is (MMIO
  store vs kernel trap) is a provider design choice, so the cost is
  charged host-side by the provider; the NIC side just gets notified.
- send/receive **engines** — single-threaded firmware loops, modelled
  as capacity-1 resources so message processing serialises on the NIC
  exactly as it does on a LANai.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Generator, Hashable

from ..sim import Event, Resource, Simulator
from .link import DuplexPort, Packet

__all__ = ["TranslationCache", "DMAEngine", "NIC"]


class TranslationCache:
    """LRU cache of virtual-page -> physical-frame entries on the NIC."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("cache must have at least one entry")
        self.entries = entries
        self._cache: OrderedDict[Hashable, int] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._cache)

    def lookup(self, vpage: Hashable) -> int | None:
        """Return the cached frame and refresh LRU order, else None."""
        frame = self._cache.get(vpage)
        if frame is None:
            self.misses += 1
            return None
        self._cache.move_to_end(vpage)
        self.hits += 1
        return frame

    def insert(self, vpage: Hashable, frame: int) -> None:
        if vpage in self._cache:
            self._cache.move_to_end(vpage)
            self._cache[vpage] = frame
            return
        if len(self._cache) >= self.entries:
            self._cache.popitem(last=False)
            self.evictions += 1
        self._cache[vpage] = frame

    def invalidate(self, vpage: Hashable) -> None:
        self._cache.pop(vpage, None)

    def flush(self) -> None:
        self._cache.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DMAEngine:
    """The NIC's I/O-bus mover: finite bandwidth, serialised transfers."""

    def __init__(
        self, sim: Simulator, bandwidth: float, per_transfer_cost: float = 0.0
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("DMA bandwidth must be positive (bytes/us)")
        self.sim = sim
        self.bandwidth = bandwidth
        self.per_transfer_cost = per_transfer_cost
        self._bus = Resource(sim, capacity=1)
        #: virtual bus occupancy left behind by an arithmetic burst;
        #: event-path transfers arriving before this instant wait it out
        #: as if the bus resource had been held for real.  Stays 0.0 in
        #: pure packet mode (one float compare per transfer).
        self._ff_busy_until = 0.0
        self.transfers = 0
        self.bytes_moved = 0

    def transfer_time(self, nbytes: int) -> float:
        return self.per_transfer_cost + nbytes / self.bandwidth

    def transfer(self, nbytes: int) -> Generator[Event, Any, None]:
        """Process fragment: move ``nbytes`` across the I/O bus."""
        if nbytes < 0:
            raise ValueError("negative DMA size")
        sim = self.sim
        busy = self._ff_busy_until
        if busy > 0.0:
            wait = busy - sim._now
            if wait > 0.0:
                yield sim.timeout(wait)
        yield self._bus.request()
        try:
            yield sim.timeout(self.transfer_time(nbytes))
        finally:
            self._bus.release()
        self.transfers += 1
        self.bytes_moved += nbytes

    def note_burst(self, n: int, nbytes: int, busy_until: float) -> None:
        """Commit an arithmetic burst of transfers: counters + occupancy."""
        self.transfers += n
        self.bytes_moved += nbytes
        if busy_until > self._ff_busy_until:
            self._ff_busy_until = busy_until


class NIC:
    """A programmable NIC: engines + TLB + DMA + a port to the fabric.

    The provider's protocol engine drives this object; the NIC itself is
    mechanism, not policy.  Incoming packets are handed to ``rx_handler``
    (set by the provider) as soon as they arrive off the wire.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        dma_bandwidth: float = 200.0,
        dma_per_transfer_cost: float = 0.2,
        tlb_entries: int = 64,
    ) -> None:
        self.sim = sim
        self.name = name
        self.send_engine = Resource(sim, capacity=1)
        self.recv_engine = Resource(sim, capacity=1)
        self.dma = DMAEngine(sim, dma_bandwidth, dma_per_transfer_cost)
        self.tlb = TranslationCache(tlb_entries)
        self.port: DuplexPort | None = None
        self.rx_handler: Callable[[Packet], None] | None = None
        self.tx_packets = 0
        self.rx_packets = 0
        self.doorbells = 0
        self.doorbells_dropped = 0
        self.rx_crc_drops = 0

    def ring_doorbell(self, droppable: bool = True) -> float | None:
        """Host-side notification that work was posted (cost is charged
        by the provider; the NIC only counts the ring).

        Returns ``None`` when the ring is delivered.  Under an armed
        ``doorbell_drop`` fault the ring may be lost: the call returns
        the recovery-scan delay (µs until the NIC's periodic scan would
        find the posted descriptor) for the caller to schedule around.
        ``droppable=False`` exempts rings whose loss has no NIC-visible
        effect (receive descriptors are discovered when data arrives).
        """
        if droppable:
            faults = self.sim.faults
            if faults is not None:
                delay = faults.doorbell_dropped(self.name)
                if delay is not None:
                    self.doorbells_dropped += 1
                    self.sim.trace("nic", "doorbell_dropped", self.name)
                    return delay
        self.doorbells += 1
        return None

    def attach_port(self, port: DuplexPort) -> None:
        self.port = port

    def transmit(self, packet: Packet) -> Generator[Event, Any, None]:
        """Process fragment: put one packet on the wire."""
        if self.port is None:
            raise RuntimeError(f"NIC {self.name} is not attached to a fabric")
        self.tx_packets += 1
        yield from self.port.send(packet)

    def note_tx_burst(self, n: int) -> None:
        """Account ``n`` transmitted packets from an arithmetic burst."""
        self.tx_packets += n

    def note_rx_burst(self, n: int) -> None:
        """Account ``n`` received packets from an arithmetic burst."""
        self.rx_packets += n

    def deliver(self, packet: Packet) -> None:
        """Called by the fabric when a packet arrives for this NIC."""
        self.rx_packets += 1
        if packet.corrupted:
            # the CRC check fails in NIC hardware: the frame is dropped
            # before any protocol processing; recovery (retransmission,
            # handshake retry) is the protocol engine's problem
            self.rx_crc_drops += 1
            self.sim.trace("nic", "crc_drop", self.name, pkt=packet.pkt_id)
            return
        if self.rx_handler is None:
            raise RuntimeError(
                f"NIC {self.name} received a packet but no rx_handler is set"
            )
        self.rx_handler(packet)
