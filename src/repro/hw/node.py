"""A compute node: host CPU + memory + NIC."""

from __future__ import annotations

from ..sim import Simulator
from .cpu import HostCPU
from .memory import MemorySystem
from .nic import NIC

__all__ = ["Node"]


class Node:
    """One machine in the testbed."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mem_copy_bw: float = 180.0,
        dma_bandwidth: float = 200.0,
        dma_per_transfer_cost: float = 0.2,
        tlb_entries: int = 64,
        page_size: int = 4096,
    ) -> None:
        self.sim = sim
        self.name = name
        self.cpu = HostCPU(sim, mem_copy_bw=mem_copy_bw, name=name)
        self.mem = MemorySystem(page_size=page_size)
        self.nic = NIC(
            sim,
            f"{name}.nic",
            dma_bandwidth=dma_bandwidth,
            dma_per_transfer_cost=dma_per_transfer_cost,
            tlb_entries=tlb_entries,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name}>"
