"""Host virtual-memory model: regions, pages, pinning, page tables.

VIA requires every communication buffer to live in *registered* memory:
the OS pins the pages and the provider records virtual-to-physical
translations so the NIC can DMA directly to/from user buffers.  The
quantities the paper measures — registration cost per page (Fig. 1),
translation cost per page on the NIC (Fig. 5) — all reduce to page-level
bookkeeping, so this model tracks real pages with real contents.

Addresses are integers in a flat per-node virtual address space.
Payloads are real ``bytes`` so data-integrity can be asserted end to
end.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

__all__ = [
    "PAGE_SIZE",
    "MemoryError_",
    "ProtectionError",
    "VirtualRegion",
    "PageTable",
    "MemorySystem",
    "page_span",
]

PAGE_SIZE = 4096

# Virtual allocations start well away from 0 so a 0 address is always bad.
_VA_BASE = 0x1000_0000


class MemoryError_(Exception):
    """Bad address, overlap, or exhausted physical memory."""


class ProtectionError(MemoryError_):
    """Access outside an allocated region or to unpinned pages."""


def page_span(addr: int, length: int, page_size: int = PAGE_SIZE) -> range:
    """Virtual page numbers touched by ``[addr, addr+length)``.

    A zero-length transfer still touches the page of its address (VIA
    descriptors may carry zero-byte segments whose address must still be
    registered).
    """
    if addr < 0 or length < 0:
        raise ValueError("negative address or length")
    first = addr // page_size
    last = (addr + max(length, 1) - 1) // page_size
    return range(first, last + 1)


@dataclass
class VirtualRegion:
    """A contiguous virtual allocation with backing bytes."""

    base: int
    length: int
    data: bytearray = field(repr=False)
    freed: bool = False

    @property
    def end(self) -> int:
        return self.base + self.length

    def contains(self, addr: int, length: int = 1) -> bool:
        return self.base <= addr and addr + length <= self.end


class PageTable:
    """Virtual-page -> physical-frame map for one node.

    Frames are handed out by a bump allocator; the simulation never
    reuses a frame number, which makes stale-translation bugs (a classic
    VIA provider hazard the paper alludes to) detectable in tests.
    """

    def __init__(self, page_size: int = PAGE_SIZE) -> None:
        self.page_size = page_size
        self._map: dict[int, int] = {}
        self._next_frame = 1  # frame 0 reserved as "invalid"

    def __len__(self) -> int:
        return len(self._map)

    def map_page(self, vpage: int) -> int:
        """Ensure ``vpage`` has a frame; return the frame number."""
        frame = self._map.get(vpage)
        if frame is None:
            frame = self._next_frame
            self._next_frame += 1
            self._map[vpage] = frame
        return frame

    def unmap_page(self, vpage: int) -> None:
        self._map.pop(vpage, None)

    def translate(self, vpage: int) -> int:
        """Frame for ``vpage``; raises if not mapped (i.e. not pinned)."""
        try:
            return self._map[vpage]
        except KeyError:
            raise ProtectionError(f"virtual page {vpage:#x} has no mapping") from None


class MemorySystem:
    """Per-node allocator + pin accounting.

    Pinning is reference counted per page: two registered memory regions
    may overlap the same page, and the page stays resident until both
    deregister (the semantics the VIA spec requires of providers).
    """

    def __init__(self, page_size: int = PAGE_SIZE, pinnable_pages: int = 1 << 20) -> None:
        self.page_size = page_size
        self.pinnable_pages = pinnable_pages
        self.page_table = PageTable(page_size)
        self._regions: list[VirtualRegion] = []  # sorted by base
        self._bases: list[int] = []
        self._next_va = _VA_BASE
        self._pin_counts: dict[int, int] = {}

    # -- allocation ------------------------------------------------------
    def alloc(self, length: int, align_page: bool = True) -> VirtualRegion:
        """Allocate a fresh region; page-aligned by default."""
        if length <= 0:
            raise ValueError(f"allocation length must be positive, got {length}")
        base = self._next_va
        if align_page and base % self.page_size:
            base += self.page_size - base % self.page_size
        region = VirtualRegion(base=base, length=length, data=bytearray(length))
        self._next_va = base + length
        idx = bisect.bisect_left(self._bases, base)
        self._bases.insert(idx, base)
        self._regions.insert(idx, region)
        return region

    def free(self, region: VirtualRegion) -> None:
        """Release a region. Pinned pages must be unpinned first."""
        if region.freed:
            raise MemoryError_("double free")
        for vpage in page_span(region.base, region.length, self.page_size):
            if self._pin_counts.get(vpage):
                # Only an error if no *other* live region shares the page;
                # overlapping regions are not produced by alloc(), so any
                # pin on our pages is ours.
                raise MemoryError_(
                    f"region {region.base:#x} freed while page {vpage:#x} is pinned"
                )
        region.freed = True
        idx = bisect.bisect_left(self._bases, region.base)
        if idx < len(self._bases) and self._bases[idx] == region.base:
            del self._bases[idx]
            del self._regions[idx]

    def region_at(self, addr: int) -> VirtualRegion:
        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx >= 0:
            region = self._regions[idx]
            if region.contains(addr):
                return region
        raise ProtectionError(f"address {addr:#x} is not allocated")

    # -- data access -----------------------------------------------------
    def write(self, addr: int, data: bytes) -> None:
        region = self.region_at(addr)
        if not region.contains(addr, len(data)):
            raise ProtectionError(
                f"write of {len(data)} bytes at {addr:#x} spills out of region"
            )
        off = addr - region.base
        region.data[off : off + len(data)] = data

    def read(self, addr: int, length: int) -> bytes:
        region = self.region_at(addr)
        if not region.contains(addr, max(length, 1)):
            raise ProtectionError(
                f"read of {length} bytes at {addr:#x} spills out of region"
            )
        off = addr - region.base
        return bytes(region.data[off : off + length])

    # -- pinning ---------------------------------------------------------
    @property
    def pinned_pages(self) -> int:
        return len(self._pin_counts)

    def pin(self, addr: int, length: int) -> list[int]:
        """Pin all pages of ``[addr, addr+length)``; returns their vpages.

        Raises if the range is not fully inside one allocated region or
        the pinnable-page budget would be exceeded.
        """
        region = self.region_at(addr)
        if not region.contains(addr, max(length, 1)):
            raise ProtectionError(
                f"pin range {addr:#x}+{length} spills out of its region"
            )
        pages = list(page_span(addr, length, self.page_size))
        new = sum(1 for p in pages if p not in self._pin_counts)
        if self.pinned_pages + new > self.pinnable_pages:
            raise MemoryError_(
                f"pinning {new} pages exceeds budget of {self.pinnable_pages}"
            )
        for p in pages:
            self._pin_counts[p] = self._pin_counts.get(p, 0) + 1
            self.page_table.map_page(p)
        return pages

    def unpin(self, pages: list[int]) -> None:
        for p in pages:
            count = self._pin_counts.get(p)
            if not count:
                raise MemoryError_(f"unpin of page {p:#x} that is not pinned")
            if count == 1:
                del self._pin_counts[p]
                self.page_table.unmap_page(p)
            else:
                self._pin_counts[p] = count - 1

    def is_pinned(self, addr: int, length: int) -> bool:
        return all(
            p in self._pin_counts for p in page_span(addr, length, self.page_size)
        )
