"""Two-tier (leaf/spine) fabrics: the cluster beyond one switch.

The paper's testbed is a single switch; real SAN deployments of the era
(and the scalability questions §3.1 raises) involve multi-switch
topologies where traffic crossing switches shares inter-switch links.
:class:`TieredFabric` wires groups of nodes to leaf switches joined by
one spine:

    node --- leaf switch ===(uplink)=== spine ===(uplink)=== leaf --- node

Intra-leaf traffic behaves exactly like the flat :class:`Fabric`;
inter-leaf traffic additionally serialises on the leaf↔spine links —
the shared resource that makes placement matter.
"""

from __future__ import annotations

import random

from ..sim import Simulator
from .link import Channel, DuplexPort, Packet
from .network import (_CUT_THROUGH_SKEW, _SourceArbiter, HostParams,
                      NetworkParams, OutputPort)
from .node import Node

__all__ = ["TieredFabric"]


class _LeafSwitch:
    """Connects its local nodes; forwards the rest to the spine.

    Node-facing downlinks sit behind :class:`OutputPort` queues (the
    contention point when many senders converge on one node); the
    leaf→spine uplink is a plain full-rate channel whose line resource
    already queues — the shared-core model.
    """

    def __init__(self, sim: Simulator, params: NetworkParams, name: str) -> None:
        self.sim = sim
        self.params = params
        self.name = name
        self.local_down: dict[str, Channel] = {}
        self.local_ports: dict[str, OutputPort] = {}
        self.uplink: Channel | None = None     # to the spine
        self._arbiter = _SourceArbiter(sim, self._dispatch)
        self.forwarded_local = 0
        self.forwarded_up = 0

    def attach_local(self, node_name: str, downlink: Channel) -> None:
        self.local_down[node_name] = downlink
        self.local_ports[node_name] = OutputPort(
            self.sim, downlink, self.params,
            name=f"{node_name}.downport")

    def receive(self, packet: Packet) -> None:
        self._arbiter.submit(packet)

    def _dispatch(self, packet: Packet) -> None:
        port = self.local_ports.get(packet.dst)
        if port is not None:
            self.forwarded_local += 1
            self.sim.process(self._forward_port(packet, port),
                             name=f"{self.name}-fwd")
        else:
            self.forwarded_up += 1
            assert self.uplink is not None
            self.sim.process(self._forward(packet, self.uplink),
                             name=f"{self.name}-up")

    def _forward(self, packet: Packet, channel: Channel):
        yield self.sim.timeout(self.params.switch_latency)
        yield from channel.send(packet)

    def _forward_port(self, packet: Packet, port: OutputPort):
        yield self.sim.timeout(self.params.switch_latency)
        yield from port.forward(packet)


class _SpineSwitch:
    """Routes between leaves by destination node."""

    def __init__(self, sim: Simulator, params: NetworkParams) -> None:
        self.sim = sim
        self.params = params
        self.down_by_node: dict[str, Channel] = {}
        self._arbiter = _SourceArbiter(sim, self._dispatch)
        self.forwarded = 0

    def receive(self, packet: Packet) -> None:
        if packet.dst not in self.down_by_node:
            raise KeyError(f"spine has no route to {packet.dst!r}")
        self._arbiter.submit(packet)

    def _dispatch(self, packet: Packet) -> None:
        channel = self.down_by_node[packet.dst]
        self.forwarded += 1
        self.sim.process(self._forward(packet, channel), name="spine-fwd")

    def _forward(self, packet: Packet, channel: Channel):
        yield self.sim.timeout(self.params.switch_latency)
        yield from channel.send(packet)


class TieredFabric:
    """Leaf/spine topology with the flat-fabric node construction.

    ``leaf_groups`` is a tuple of node-name tuples, one per leaf switch.
    ``uplink_bandwidth`` (bytes/µs) sets the leaf↔spine capacity —
    defaults to the line rate, i.e. a 1:N oversubscribed core when a
    leaf hosts N nodes.
    """

    def __init__(
        self,
        sim: Simulator,
        network: NetworkParams,
        leaf_groups: tuple[tuple[str, ...], ...],
        host: HostParams = HostParams(),
        uplink_bandwidth: float | None = None,
        seed: int = 0,
    ) -> None:
        names = [n for group in leaf_groups for n in group]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique across leaves")
        if len(leaf_groups) < 2:
            raise ValueError("a tiered fabric needs at least two leaves")
        self.sim = sim
        self.network = network
        self.host = host
        self.nodes: dict[str, Node] = {}
        self.leaf_of: dict[str, int] = {}
        self.leaves: list[_LeafSwitch] = []
        self.spine = _SpineSwitch(sim, network)
        up_bw = uplink_bandwidth or network.bandwidth

        down_bw = network.bandwidth
        down_hdr = network.header_bytes
        down_ppc = network.per_packet_cost
        if not network.store_and_forward:
            # same cut-through discipline as the flat Fabric: the channel
            # charges only the forwarding skew, the OutputPort accounts
            # line-rate occupancy under contention
            down_bw *= _CUT_THROUGH_SKEW
            down_hdr = 0
            down_ppc = 0.0

        for li, group in enumerate(leaf_groups):
            leaf = _LeafSwitch(sim, network, f"leaf{li}")
            # leaf -> spine and spine -> leaf links: ALWAYS serialised at
            # the uplink rate (this is the shared core resource)
            up = Channel(sim, up_bw, network.prop_delay,
                         network.header_bytes, network.per_packet_cost,
                         name=f"leaf{li}.up")
            up.sink = self.spine.receive
            leaf.uplink = up
            spine_down = Channel(sim, up_bw, network.prop_delay,
                                 network.header_bytes,
                                 network.per_packet_cost,
                                 name=f"leaf{li}.spinedown")
            spine_down.sink = leaf.receive
            for ni, name in enumerate(group):
                node = Node(
                    sim, name,
                    mem_copy_bw=host.mem_copy_bw,
                    dma_bandwidth=host.dma_bandwidth,
                    dma_per_transfer_cost=host.dma_per_transfer_cost,
                    tlb_entries=host.tlb_entries,
                    page_size=host.page_size,
                )
                uplink = Channel(
                    sim, network.bandwidth, network.prop_delay,
                    network.header_bytes, network.per_packet_cost,
                    network.loss_rate,
                    rng=random.Random(seed * 1000 + li * 64 + ni),
                    name=f"{name}.up",
                )
                downlink = Channel(sim, down_bw, network.prop_delay,
                                   down_hdr, down_ppc, name=f"{name}.down")
                uplink.sink = leaf.receive
                downlink.sink = node.nic.deliver
                node.nic.attach_port(DuplexPort(uplink, name=f"{name}.port"))
                leaf.attach_local(name, downlink)
                self.spine.down_by_node[name] = spine_down
                self.nodes[name] = node
                self.leaf_of[name] = li
            self.leaves.append(leaf)

        # the spine's per-leaf downlink must route to the LEAF, which
        # then delivers locally; spine_down.sink is leaf.receive and the
        # leaf sees dst in local_down -> local delivery.  (Set above.)

    def node(self, name: str) -> Node:
        return self.nodes[name]

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(self.nodes)

    def same_leaf(self, a: str, b: str) -> bool:
        return self.leaf_of[a] == self.leaf_of[b]
