"""Host CPU model with rusage-style accounting.

The paper measures CPU utilisation with ``getrusage`` — user plus system
time over wall time.  This model reproduces that split:

- every explicit cost (posting a descriptor, a kernel trap, a memory
  copy) is charged as *user* or *system* busy time to an actor;
- **polling** a completion is a spin-wait: the actor holds the CPU and
  is charged busy time for the whole wait (hence the paper's 100 %
  polling utilisation);
- **blocking** releases the CPU; on completion an interrupt/wakeup cost
  is charged as system time (hence blocking's latency penalty and low
  utilisation).

One :class:`HostCPU` per node arbitrates between actors with a FIFO
resource, so co-located benchmark processes contend realistically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..sim import Event, Resource, Simulator

__all__ = ["Rusage", "HostCPU", "CpuActor"]


@dataclass
class Rusage:
    """Accumulated user/system time in microseconds (getrusage analog)."""

    utime: float = 0.0
    stime: float = 0.0

    @property
    def total(self) -> float:
        return self.utime + self.stime

    def copy(self) -> "Rusage":
        return Rusage(self.utime, self.stime)

    def __sub__(self, other: "Rusage") -> "Rusage":
        return Rusage(self.utime - other.utime, self.stime - other.stime)


class HostCPU:
    """A single host processor shared by the node's actors."""

    def __init__(
        self, sim: Simulator, mem_copy_bw: float = 180.0, name: str = "host"
    ) -> None:
        """``mem_copy_bw`` is memcpy throughput in bytes/µs (MB/s);
        ~180 MB/s is typical of the paper's Pentium-II era hosts.
        ``name`` identifies the CPU to the fault injector (the owning
        node's name)."""
        if mem_copy_bw <= 0:
            raise ValueError("mem_copy_bw must be positive")
        self.sim = sim
        self.name = name
        self.mem_copy_bw = mem_copy_bw
        self.resource = Resource(sim, capacity=1)
        self._actors: dict[str, CpuActor] = {}

    def actor(self, name: str) -> "CpuActor":
        """Get-or-create the named actor (e.g. one per benchmark process)."""
        actor = self._actors.get(name)
        if actor is None:
            actor = CpuActor(self, name)
            self._actors[name] = actor
        return actor

    def copy_cost(self, nbytes: int) -> float:
        """Time for the host to memcpy ``nbytes``."""
        return nbytes / self.mem_copy_bw


class CpuActor:
    """An execution context (process/thread) on a :class:`HostCPU`.

    All methods returning generators are process fragments: invoke them
    with ``yield from`` inside a simulation process.
    """

    def __init__(self, cpu: HostCPU, name: str) -> None:
        self.cpu = cpu
        self.name = name
        self.rusage = Rusage()
        #: user time spent spin-waiting (a subset of ``rusage.utime``)
        self.poll_time = 0.0

    @property
    def sim(self) -> Simulator:
        return self.cpu.sim

    def charge(self, duration: float, kind: str = "user") -> None:
        """Account busy time without consuming simulated time.

        Used when the surrounding code already advanced the clock (e.g.
        spin waits) or for zero-duration bookkeeping.
        """
        if duration < 0:
            raise ValueError(f"negative charge: {duration}")
        if kind == "user":
            self.rusage.utime += duration
        elif kind == "sys":
            self.rusage.stime += duration
        else:
            raise ValueError(f"unknown time kind {kind!r}")

    def _acquire_cpu(self) -> Generator[Event, Any, None]:
        """Acquire the CPU, leaving no stale state on interruption.

        A plain ``yield resource.request()`` is unsafe: if the waiting
        process is interrupted (or the request fails) while still
        queued, the dangling request would later be granted to nobody
        and the CPU slot would leak forever.  On failure this cancels a
        still-queued request, or releases a slot that was granted but
        whose grant-event had not yet been delivered.
        """
        req = self.cpu.resource.request()
        try:
            yield req
        except BaseException:
            if req.triggered:
                self.cpu.resource.release()
            else:
                req.cancel()
            raise

    def busy(self, duration: float, kind: str = "user") -> Generator[Event, Any, None]:
        """Hold the CPU for ``duration`` µs of work."""
        if duration < 0:
            raise ValueError(f"negative busy duration: {duration}")
        if duration == 0.0:
            return
        faults = self.sim.faults
        if faults is not None:
            duration = faults.cpu_time(self.cpu.name, duration)
        yield from self._acquire_cpu()
        try:
            yield self.sim.timeout(duration)
            self.charge(duration, kind)
        finally:
            self.cpu.resource.release()

    def copy(self, nbytes: int, kind: str = "sys") -> Generator[Event, Any, None]:
        """memcpy ``nbytes`` on the host (kernel staging copies are 'sys')."""
        yield from self.busy(self.cpu.copy_cost(nbytes), kind)

    def spin_wait(self, event: Event) -> Generator[Event, Any, Any]:
        """Poll for ``event`` while hogging the CPU (100 % utilisation).

        If ``event`` fails mid-spin, the exception propagates to the
        caller, but the CPU is still released and the time spent
        spinning up to the failure is still charged as user time.
        """
        yield from self._acquire_cpu()
        start = self.sim.now
        try:
            value = yield event
        finally:
            spun = self.sim.now - start
            self.charge(spun, "user")
            self.poll_time += spun
            metrics = self.sim.metrics
            if metrics is not None:
                metrics.observe(f"cpu.{self.name}.spin_us", spun)
            self.cpu.resource.release()
        return value

    def block_wait(
        self, event: Event, wakeup_cost: float, delay: float = 0.0
    ) -> Generator[Event, Any, Any]:
        """Sleep until ``event``; pay interrupt costs on resume.

        The wait itself is idle (not charged).  ``delay`` is uncharged
        interrupt latency; ``wakeup_cost`` is handler/scheduler time,
        charged as system time.  Together they are the blocking latency
        penalty the paper shows in Fig. 4.
        """
        value = yield event
        if delay:
            yield self.sim.timeout(delay)
        yield from self.busy(wakeup_cost, "sys")
        return value

    def snapshot(self) -> Rusage:
        return self.rusage.copy()
