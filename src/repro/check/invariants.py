"""Online VIA-spec conformance checking: the validating shadow layer.

Real VIA stacks enforce the spec in hardware; our simulated stack
enforces it only implicitly through its own control flow.  This module
makes the rules explicit: a :class:`ConformanceChecker` attached to a
testbed's simulator mirrors the spec-relevant state (descriptor
lifecycle, per-VI FIFO order, VI state machine, delivery sequence
numbers) *independently* of the model code, so a perf refactor that
silently bends semantics while keeping timings plausible fails loudly.

Invariants asserted online (hook sites in ``via/`` and ``providers/``):

- **descriptor lifecycle** — a descriptor completes exactly once per
  posting, on the queue it was posted to, and its status writeback
  happens before any CQ deposit;
- **FIFO completion** — each work queue completes descriptors in the
  order they were posted (spec §2.1);
- **VI state machine** — every transition is legal per the spec's state
  diagram (an independent copy of the transition table);
- **memory protection** — every simulated DMA lands inside a region
  that is registered, still pinned, and carries the VI's protection
  tag; RDMA targets additionally need the matching enable bit;
- **reliability semantics** — an unreliable VI never retransmits;
  reliable VIs deliver each message exactly once, in order;
- **packet conservation** (at quiesce) — every packet a channel
  serialised was either delivered or dropped.

Zero cost when disabled: ``Simulator.checker`` is ``None`` by default
(the same discipline as ``sim.tracer`` / ``sim.metrics``) and every
hook site reads the attribute once and skips on ``None``.  The checker
itself only *reads* model state — it consumes no simulated time,
schedules nothing, and mutates nothing — so a checked run is
bit-identical to an unchecked one.
"""

from __future__ import annotations

from collections import deque
from math import inf
from typing import TYPE_CHECKING

from ..via.constants import CompletionStatus, Reliability, ViState
from ..via.errors import VipProtectionError

if TYPE_CHECKING:  # pragma: no cover
    from ..providers.base import SimulatedProvider
    from ..providers.registry import Testbed
    from ..via.cq import CompletionQueue
    from ..via.descriptor import Descriptor
    from ..via.memory import MemoryHandle
    from ..via.vi import VI, WorkQueue

__all__ = ["ConformanceError", "ConformanceChecker", "attach_checker"]


class ConformanceError(Exception):
    """A VIA-spec invariant was violated.

    Deliberately *not* a ``VipError`` subclass: application-level code
    (and the workload fuzzer) catches ``VipError`` as legitimate VIA
    semantics (timeouts, flushed descriptors, connection errors), while
    a conformance violation is a bug in the stack itself and must
    propagate all the way out.
    """


#: independent copy of the spec's legal VI transitions (§2.1); kept
#: separate from ``VI.to_state`` on purpose so bending the model's
#: table cannot silently bend the check too
_SPEC_LEGAL = {
    ViState.IDLE: frozenset({ViState.CONNECT_PENDING, ViState.CONNECTED,
                             ViState.DESTROYED}),
    ViState.CONNECT_PENDING: frozenset({ViState.CONNECTED, ViState.IDLE,
                                        ViState.ERROR, ViState.DESTROYED}),
    ViState.CONNECTED: frozenset({ViState.DISCONNECTED, ViState.ERROR,
                                  ViState.DESTROYED}),
    ViState.DISCONNECTED: frozenset({ViState.IDLE, ViState.DESTROYED,
                                     ViState.CONNECTED}),
    ViState.ERROR: frozenset({ViState.IDLE, ViState.DESTROYED}),
    ViState.DESTROYED: frozenset(),
}


class ConformanceChecker:
    """Mirrors spec-relevant state and raises on any divergence.

    One instance per testbed; attach with :func:`attach_checker` (or
    ``Testbed(..., check=True)``).  All ``on_*`` methods are hook
    targets called from instrumentation sites; ``check_quiesced`` is
    the end-of-run audit.
    """

    def __init__(self) -> None:
        #: node name -> provider, for protection lookups
        self._providers: dict[str, "SimulatedProvider"] = {}
        #: desc_id -> (vi_id, kind, descriptor) while posted
        self._posted: dict[int, tuple[int, str, "Descriptor"]] = {}
        #: (vi_id, kind) -> posted desc_ids in FIFO order (shadow queue)
        self._fifo: dict[tuple[int, str], deque[int]] = {}
        #: completions written back but not yet deposited in their CQ
        self._awaiting_deposit: set[int] = set()
        #: vi_id -> next acceptable incoming sequence number
        self._next_rx: dict[int, int] = {}
        #: running totals, for reports
        self.posts = 0
        self.completions = 0
        self.deliveries = 0

    def register_provider(self, provider: "SimulatedProvider") -> None:
        self._providers[provider.node.name] = provider

    def _fail(self, msg: str) -> None:
        raise ConformanceError(msg)

    # -- descriptor lifecycle + FIFO ordering ----------------------------
    def on_post(self, wq: "WorkQueue", desc: "Descriptor") -> None:
        if desc.desc_id in self._posted:
            vi_id, kind, _ = self._posted[desc.desc_id]
            self._fail(
                f"descriptor {desc.desc_id} posted twice (already on the "
                f"{kind} queue of VI {vi_id})"
            )
        key = (wq.vi.vi_id, wq.kind)
        self._posted[desc.desc_id] = (key[0], key[1], desc)
        self._fifo.setdefault(key, deque()).append(desc.desc_id)
        self.posts += 1

    def on_complete(self, wq: "WorkQueue", desc: "Descriptor",
                    status: CompletionStatus) -> None:
        rec = self._posted.pop(desc.desc_id, None)
        if rec is None:
            self._fail(
                f"descriptor {desc.desc_id} completed but not posted "
                "(double completion, or completion of a foreign descriptor)"
            )
        key = (wq.vi.vi_id, wq.kind)
        if (rec[0], rec[1]) != key:
            self._fail(
                f"descriptor {desc.desc_id} posted on the {rec[1]} queue of "
                f"VI {rec[0]} but completed on the {wq.kind} queue of "
                f"VI {key[0]}"
            )
        shadow = self._fifo.get(key)
        if not shadow or shadow[0] != desc.desc_id:
            head = shadow[0] if shadow else None
            self._fail(
                f"FIFO violation on the {wq.kind} queue of VI {key[0]}: "
                f"completed descriptor {desc.desc_id} while {head} is the "
                "oldest posted"
            )
        shadow.popleft()
        if status is CompletionStatus.PENDING:
            self._fail(
                f"descriptor {desc.desc_id} completed with PENDING status"
            )
        if desc.control.status is not status:
            self._fail(
                f"descriptor {desc.desc_id}: status writeback missing at "
                f"completion (control block says "
                f"{desc.control.status.value}, completion says "
                f"{status.value})"
            )
        if wq.cq is not None:
            self._awaiting_deposit.add(desc.desc_id)
        self.completions += 1

    def on_cq_deposit(self, cq: "CompletionQueue", wq: "WorkQueue",
                      desc: "Descriptor") -> None:
        if desc.control.status is CompletionStatus.PENDING:
            self._fail(
                f"CQ {cq.cq_id}: deposit of descriptor {desc.desc_id} "
                "precedes its status writeback"
            )
        if desc.desc_id not in self._awaiting_deposit:
            self._fail(
                f"CQ {cq.cq_id}: deposit of descriptor {desc.desc_id} "
                "without a completed writeback on its work queue"
            )
        self._awaiting_deposit.discard(desc.desc_id)

    # -- VI state machine -------------------------------------------------
    def on_vi_transition(self, vi: "VI", old: ViState, new: ViState) -> None:
        if new not in _SPEC_LEGAL[old]:
            self._fail(
                f"VI {vi.vi_id} on {vi.node_name}: illegal transition "
                f"{old.value} -> {new.value}"
            )

    # -- memory protection -------------------------------------------------
    def on_local_dma(self, provider: "SimulatedProvider", vi: "VI",
                     desc: "Descriptor") -> None:
        """A descriptor's gather/scatter list is about to be DMAed."""
        for seg in desc.segments:
            if seg.length == 0:
                continue
            self._check_segment(provider, vi, desc, seg)

    def _check_segment(self, provider, vi, desc, seg) -> None:
        mh = seg.handle
        where = (f"descriptor {desc.desc_id} on VI {vi.vi_id} "
                 f"({vi.node_name})")
        if mh is None:
            self._fail(f"{where}: DMA segment without a memory handle")
        if not mh.active or not provider.registry.is_registered(mh):
            self._fail(
                f"{where}: DMA through deregistered handle {mh.handle_id}"
            )
        if mh.tag != vi.ptag:
            self._fail(
                f"{where}: protection tag mismatch (handle has {mh.tag}, "
                f"VI has {vi.ptag})"
            )
        if not mh.covers(seg.address, seg.length):
            self._fail(
                f"{where}: DMA segment [{seg.address:#x}, +{seg.length}) "
                f"outside handle {mh.handle_id} "
                f"[{mh.address:#x}, +{mh.length})"
            )
        if not provider.node.mem.is_pinned(seg.address, seg.length):
            self._fail(
                f"{where}: DMA through unpinned pages at "
                f"[{seg.address:#x}, +{seg.length})"
            )

    def on_rdma_dma(self, provider: "SimulatedProvider", address: int,
                    length: int, handle_id: int, write: bool) -> None:
        """An incoming RDMA is about to touch this node's memory."""
        op = "write" if write else "read"
        try:
            mh = provider.registry.lookup(handle_id)
        except VipProtectionError:
            self._fail(
                f"RDMA {op} on {provider.node.name} through unknown "
                f"handle {handle_id}"
            )
            return  # pragma: no cover - _fail always raises
        if not mh.covers(address, max(length, 1)):
            self._fail(
                f"RDMA {op} on {provider.node.name}: "
                f"[{address:#x}, +{length}) outside handle {handle_id}"
            )
        if write and not mh.enable_rdma_write:
            self._fail(
                f"RDMA write on {provider.node.name}: handle {handle_id} "
                "has RDMA write disabled"
            )
        if not write and not mh.enable_rdma_read:
            self._fail(
                f"RDMA read on {provider.node.name}: handle {handle_id} "
                "has RDMA read disabled"
            )
        if not provider.node.mem.is_pinned(address, max(length, 1)):
            self._fail(
                f"RDMA {op} on {provider.node.name} through unpinned "
                f"pages at [{address:#x}, +{length})"
            )

    def on_deregister(self, provider: "SimulatedProvider",
                      mh: "MemoryHandle") -> None:
        """A handle is being deregistered; no posted descriptor may
        still name it (its pages would unpin under an armed DMA)."""
        for vi_id, kind, desc in self._posted.values():
            for seg in desc.segments:
                if seg.handle is mh:
                    self._fail(
                        f"handle {mh.handle_id} deregistered on "
                        f"{provider.node.name} while descriptor "
                        f"{desc.desc_id} ({kind} queue of VI {vi_id}) "
                        "still references it"
                    )

    # -- reliability semantics ---------------------------------------------
    def on_retransmit(self, vi: "VI") -> None:
        if vi.reliability is Reliability.UNRELIABLE:
            self._fail(
                f"VI {vi.vi_id} on {vi.node_name} is UNRELIABLE but the "
                "engine retransmitted a message"
            )

    def on_deliver(self, vi: "VI", seq: int) -> None:
        """The receive engine accepted message ``seq`` on ``vi``."""
        expected = self._next_rx.get(vi.vi_id, 0)
        if vi.reliability is Reliability.UNRELIABLE:
            # datagram semantics: gaps are fine, duplicates are not
            # (an unreliable sender never retransmits, so a repeat can
            # only be an engine bug)
            if seq < expected:
                self._fail(
                    f"VI {vi.vi_id} on {vi.node_name}: duplicate delivery "
                    f"of datagram seq {seq} (next expected {expected})"
                )
        elif seq != expected:
            self._fail(
                f"VI {vi.vi_id} on {vi.node_name} "
                f"({vi.reliability.value}): delivered seq {seq} out of "
                f"order (expected {expected}) — reliable levels must "
                "deliver exactly once, in order"
            )
        self._next_rx[vi.vi_id] = seq + 1
        self.deliveries += 1

    def on_vi_reset(self, vi: "VI") -> None:
        """The VI's sequence space restarts after error recovery; forget
        the shadow delivery cursor so the fresh connection starts at 0."""
        self._next_rx.pop(vi.vi_id, None)

    # -- end-of-run audit ---------------------------------------------------
    def check_quiesced(self, tb: "Testbed") -> None:
        """Full-state audit once the simulation has drained."""
        if tb.sim.peek() != inf:
            self._fail(
                "quiesce audit called with events still scheduled "
                f"(next at t={tb.sim.peek()})"
            )
        if self._awaiting_deposit:
            self._fail(
                "completions written back but never deposited in their "
                f"CQ: descriptors {sorted(self._awaiting_deposit)}"
            )
        for name, provider in sorted(tb.providers.items()):
            for vi in provider.vis.values():
                for wq in (vi.send_q, vi.recv_q):
                    shadow = list(self._fifo.get((vi.vi_id, wq.kind), ()))
                    actual = [d.desc_id for d in wq.posted]
                    if shadow != actual:
                        self._fail(
                            f"{wq.kind} queue of VI {vi.vi_id} ({name}): "
                            f"shadow posted list {shadow} diverges from "
                            f"the model's {actual}"
                        )
            dangling = provider.connmgr.outstanding_count()
            if dangling:
                self._fail(
                    f"{name}: {dangling} connection request(s) still "
                    "outstanding at quiesce"
                )
        for label, channel in _iter_channels(tb):
            # injected wire_duplicate faults deliver a packet twice, so
            # duplicated copies count as extra sends in the ledger
            in_flight = (channel.sent_packets + channel.dup_packets
                         - channel.delivered_packets
                         - channel.dropped_packets)
            if in_flight != 0:
                self._fail(
                    f"packet conservation broken on {label}: "
                    f"{channel.sent_packets} sent + "
                    f"{channel.dup_packets} duplicated != "
                    f"{channel.delivered_packets} delivered + "
                    f"{channel.dropped_packets} dropped "
                    f"({in_flight} unaccounted at quiesce)"
                )


def _iter_channels(tb: "Testbed"):
    """Every (label, channel) in the fabric, uplinks and downlinks."""
    for name in tb.node_names:
        port = tb.fabric.node(name).nic.port
        if port is not None:
            yield f"wire.{name}.up", port.out_channel
    switch = getattr(tb.fabric, "switch", None)
    if switch is not None:
        for name, down in sorted(switch._downlinks.items()):
            yield f"wire.{name}.down", down


def attach_checker(tb: "Testbed") -> ConformanceChecker:
    """Attach a fresh conformance checker to a testbed's simulator."""
    chk = ConformanceChecker()
    for provider in tb.providers.values():
        chk.register_provider(provider)
    tb.sim.checker = chk
    return chk
