"""Conformance run orchestration and reporting.

:func:`run_conformance` is the entry point behind ``vibe check`` and
the pytest conformance suite: it runs every differential workload on
every requested provider under the online invariant checker, compares
structural signatures across providers, and (optionally) scores each
provider's LogGP self-consistency.  All failures are collected rather
than raised, so one broken provider still yields a full report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .differential import (
    ALL_PROVIDERS,
    WORKLOADS,
    compare_signatures,
    logp_consistency,
    run_workload,
)
from .invariants import ConformanceError

__all__ = ["CheckReport", "run_conformance"]


@dataclass
class CheckReport:
    """Everything one conformance run learned."""

    providers: tuple[str, ...]
    workloads: tuple[str, ...]
    #: workload -> provider -> structural signature
    signatures: dict = field(default_factory=dict)
    #: invariant violations / crashes, as "workload on provider: why"
    violations: list = field(default_factory=list)
    #: cross-provider structural divergences
    mismatches: list = field(default_factory=list)
    #: provider -> LogGP self-consistency result (empty when skipped)
    logp: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (not self.violations and not self.mismatches
                and all(r["ok"] for r in self.logp.values()))

    def summary(self) -> str:
        lines = [
            f"conformance: {len(self.workloads)} workloads x "
            f"{len(self.providers)} providers "
            f"({', '.join(self.providers)})"
        ]
        for w in self.workloads:
            done = [p for p in self.providers if p in self.signatures.get(w, {})]
            lines.append(f"  {w:<12} ran on {len(done)}/{len(self.providers)}")
        if self.violations:
            lines.append("invariant violations:")
            lines.extend(f"  {v}" for v in self.violations)
        if self.mismatches:
            lines.append("cross-provider divergences:")
            lines.extend(f"  {m}" for m in self.mismatches)
        for p, r in self.logp.items():
            verdict = "ok" if r["ok"] else "FAIL"
            lines.append(
                f"  LogGP[{p}]: rel_err={r['mean_rel_err']:.1%} "
                f"bw_ratio={r['bw_ratio']} L={r['L']}us "
                f"G={r['G']}us/B -> {verdict}"
            )
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def run_conformance(
    providers: tuple[str, ...] = ALL_PROVIDERS,
    workloads: tuple[str, ...] | None = None,
    seed: int = 0,
    logp: bool = True,
) -> CheckReport:
    """Run the conformance suite; never raises, inspect ``report.ok``."""
    names = tuple(workloads) if workloads else tuple(WORKLOADS)
    report = CheckReport(providers=tuple(providers), workloads=names)
    for w in names:
        report.signatures[w] = {}
        for p in providers:
            try:
                report.signatures[w][p] = run_workload(p, w, seed)
            except ConformanceError as exc:
                report.violations.append(f"{w} on {p}: {exc}")
            except Exception as exc:  # a crash is also a conformance fail
                report.violations.append(
                    f"{w} on {p}: crashed with {type(exc).__name__}: {exc}"
                )
    report.mismatches = compare_signatures(report.signatures,
                                           tuple(providers))
    if logp:
        for p in providers:
            report.logp[p] = logp_consistency(p)
    return report
