"""Online conformance checking for the simulated VIA stacks.

Two complementary oracles (see ``invariants`` and ``differential``):

- a zero-cost-when-disabled shadow checker asserting VIA-spec
  invariants while a testbed runs (``Testbed(..., check=True)``);
- a differential harness cross-checking structural results across all
  four providers and against the LogGP model (``vibe check``).
"""

from .differential import ALL_PROVIDERS, WORKLOADS, logp_consistency, run_workload
from .invariants import ConformanceChecker, ConformanceError, attach_checker
from .runner import CheckReport, run_conformance

__all__ = [
    "ALL_PROVIDERS",
    "WORKLOADS",
    "CheckReport",
    "ConformanceChecker",
    "ConformanceError",
    "attach_checker",
    "logp_consistency",
    "run_conformance",
    "run_workload",
]
