"""Differential cross-provider testing.

All four simulated stacks (mvia, bvia, clan, iba) implement the same
VIA spec over very different design choices, so any *structural* result
— payload bytes delivered, message counts, completion statuses,
descriptor bookkeeping — must be identical across them even though
every timing differs.  This module runs a small canon of workloads on
each provider under the conformance checker and compares their
structural signatures pairwise; a divergence means one stack bent the
spec.

A second cross-check fits the LogGP model (``repro.models.logp``) to a
quick base latency/bandwidth sweep per provider: base transfers are by
construction linear in message size, so a poor linear fit flags a
provider whose timing model went nonlinear where the paper says it
must not.
"""

from __future__ import annotations

import hashlib

from ..providers.registry import Testbed
from ..via.constants import Reliability
from ..via.descriptor import Descriptor

__all__ = ["ALL_PROVIDERS", "WORKLOADS", "run_workload",
           "compare_signatures", "logp_consistency"]

ALL_PROVIDERS = ("mvia", "bvia", "clan", "iba")


def _pattern(n: int, salt: int = 0) -> bytes:
    """Deterministic payload bytes, distinct per message."""
    return bytes((i * 7 + 3 + salt * 13) % 256 for i in range(n))


def _digest(chunks) -> str:
    h = hashlib.sha256()
    for c in chunks:
        h.update(c)
    return h.hexdigest()[:16]


# ---------------------------------------------------------------------------
# workloads: each runs on a fresh checked testbed and returns the
# workload-specific part of the structural signature
# ---------------------------------------------------------------------------

def _wl_pingpong(tb: Testbed) -> dict:
    """Unreliable send/recv ping-pong with per-iteration payloads."""
    size, iters, disc = 512, 4, 21
    node0, node1 = tb.node_names[:2]
    out: dict = {"echoes": [], "statuses": []}

    def client():
        h = tb.open(node0, "client")
        vi = yield from h.create_vi(reliability=Reliability.UNRELIABLE)
        buf = h.alloc(size)
        mh = yield from h.register_mem(buf)
        segs = [h.segment(buf, mh, 0, size)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        yield from h.connect(vi, node1, disc)
        for i in range(iters):
            h.write(buf, _pattern(size, salt=i))
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)
            desc = yield from h.recv_wait(vi)
            out["echoes"].append(h.read(buf, size))
            out["statuses"].append(desc.control.status.value)
            if i + 1 < iters:
                yield from h.post_recv(vi, Descriptor.recv(segs))
        yield from h.disconnect(vi)

    def server():
        h = tb.open(node1, "server")
        vi = yield from h.create_vi(reliability=Reliability.UNRELIABLE)
        buf = h.alloc(size)
        mh = yield from h.register_mem(buf)
        segs = [h.segment(buf, mh, 0, size)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(disc)
        yield from h.accept(req, vi)
        for i in range(iters):
            yield from h.recv_wait(vi)
            if i + 1 < iters:
                yield from h.post_recv(vi, Descriptor.recv(segs))
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)

    cproc = tb.spawn(client(), "client")
    sproc = tb.spawn(server(), "server")
    tb.run(cproc)
    tb.run(sproc)
    return {"echo": _digest(out["echoes"]),
            "statuses": tuple(out["statuses"])}


def _wl_stream(tb: Testbed) -> dict:
    """Windowed reliable-delivery stream; multi-fragment messages."""
    size, count, window, disc = 1500, 12, 4, 22
    node0, node1 = tb.node_names[:2]
    out: dict = {"got": [], "statuses": []}

    def client():
        h = tb.open(node0, "client")
        vi = yield from h.create_vi(
            reliability=Reliability.RELIABLE_DELIVERY)
        bufs = []
        for _ in range(window):
            buf = h.alloc(size)
            mh = yield from h.register_mem(buf)
            bufs.append((buf, mh))
        ctl = h.alloc(4)
        ctl_mh = yield from h.register_mem(ctl)
        # the server's "done" message can never be unexpected
        yield from h.post_recv(
            vi, Descriptor.recv([h.segment(ctl, ctl_mh, 0, 4)]))
        yield from h.connect(vi, node1, disc)
        inflight = 0
        for i in range(count):
            if inflight >= window:
                yield from h.send_wait(vi)
                inflight -= 1
            buf, mh = bufs[i % window]
            h.write(buf, _pattern(size, salt=i))
            segs = [h.segment(buf, mh, 0, size)]
            yield from h.post_send(vi, Descriptor.send(segs))
            inflight += 1
        while inflight:
            yield from h.send_wait(vi)
            inflight -= 1
        yield from h.recv_wait(vi)           # server's "done"
        yield from h.disconnect(vi)

    def server():
        h = tb.open(node1, "server")
        vi = yield from h.create_vi(
            reliability=Reliability.RELIABLE_DELIVERY)
        pool = []
        for _ in range(count):
            buf = h.alloc(size)
            mh = yield from h.register_mem(buf)
            pool.append(buf)
            yield from h.post_recv(
                vi, Descriptor.recv([h.segment(buf, mh, 0, size)]))
        ctl = h.alloc(4)
        ctl_mh = yield from h.register_mem(ctl)
        req = yield from h.connect_wait(disc)
        yield from h.accept(req, vi)
        for i in range(count):
            desc = yield from h.recv_wait(vi)
            out["statuses"].append(desc.control.status.value)
            out["got"].append(h.read(pool[i], size))
        yield from h.post_send(
            vi, Descriptor.send([h.segment(ctl, ctl_mh, 0, 4)]))
        yield from h.send_wait(vi)

    cproc = tb.spawn(client(), "client")
    sproc = tb.spawn(server(), "server")
    tb.run(cproc)
    tb.run(sproc)
    return {"stream": _digest(out["got"]),
            "statuses": tuple(out["statuses"])}


def _wl_rdma_write(tb: Testbed) -> dict:
    """Reliable RDMA writes with immediate data into a peer region."""
    size, iters, disc = 1024, 3, 23
    node0, node1 = tb.node_names[:2]
    out: dict = {"placed": [], "immediates": []}
    xchg: dict = {}

    def client():
        h = tb.open(node0, "client")
        vi = yield from h.create_vi(
            reliability=Reliability.RELIABLE_DELIVERY)
        buf = h.alloc(size)
        mh = yield from h.register_mem(buf)
        yield from h.connect(vi, node1, disc)
        raddr, rhandle = xchg["server"]   # registered before accept
        for i in range(iters):
            h.write(buf, _pattern(size, salt=100 + i))
            segs = [h.segment(buf, mh, 0, size)]
            yield from h.post_send(
                vi, Descriptor.rdma_write(segs, raddr, rhandle, immediate=i))
            yield from h.send_wait(vi)
        yield from h.disconnect(vi)

    def server():
        h = tb.open(node1, "server")
        vi = yield from h.create_vi(
            reliability=Reliability.RELIABLE_DELIVERY)
        region = h.alloc(size)
        mh = yield from h.register_mem(region, enable_rdma_write=True)
        xchg["server"] = (region.base, mh.handle_id)
        for _ in range(iters):
            yield from h.post_recv(vi, Descriptor.recv([]))
        req = yield from h.connect_wait(disc)
        yield from h.accept(req, vi)
        for _ in range(iters):
            desc = yield from h.recv_wait(vi)
            out["immediates"].append(desc.control.immediate)
            out["placed"].append(h.read(region, size))

    cproc = tb.spawn(client(), "client")
    sproc = tb.spawn(server(), "server")
    tb.run(cproc)
    tb.run(sproc)
    return {"placed": _digest(out["placed"]),
            "immediates": tuple(out["immediates"])}


def _wl_segmented(tb: Testbed) -> dict:
    """Reliable-reception ping-pong with three-segment descriptors."""
    size, nseg, iters, disc = 600, 3, 2, 24
    seg_len = size // nseg
    node0, node1 = tb.node_names[:2]
    out: dict = {"echoes": []}

    def body(me: str, peer: str, is_client: bool):
        h = tb.open(me, "app-" + me)
        vi = yield from h.create_vi(
            reliability=Reliability.RELIABLE_RECEPTION)
        buf = h.alloc(size)
        mh = yield from h.register_mem(buf)
        segs = [h.segment(buf, mh, k * seg_len, seg_len)
                for k in range(nseg)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        if is_client:
            yield from h.connect(vi, peer, disc)
        else:
            req = yield from h.connect_wait(disc)
            yield from h.accept(req, vi)
        for i in range(iters):
            if is_client:
                h.write(buf, _pattern(size, salt=200 + i))
                yield from h.post_send(vi, Descriptor.send(segs))
                yield from h.send_wait(vi)
                yield from h.recv_wait(vi)
                out["echoes"].append(h.read(buf, size))
            else:
                yield from h.recv_wait(vi)
                yield from h.post_send(vi, Descriptor.send(segs))
                yield from h.send_wait(vi)
            if i + 1 < iters:
                yield from h.post_recv(vi, Descriptor.recv(segs))
        if is_client:
            yield from h.disconnect(vi)

    cproc = tb.spawn(body(node0, node1, True), "client")
    sproc = tb.spawn(body(node1, node0, False), "server")
    tb.run(cproc)
    tb.run(sproc)
    return {"echo": _digest(out["echoes"])}


WORKLOADS = {
    "pingpong": _wl_pingpong,
    "stream": _wl_stream,
    "rdma_write": _wl_rdma_write,
    "segmented": _wl_segmented,
}


# ---------------------------------------------------------------------------
# signatures and comparison
# ---------------------------------------------------------------------------

def run_workload(provider: str, workload: str, seed: int = 0,
                 check: bool = True, fidelity: str = "packet") -> dict:
    """Run one workload on one provider under the checker.

    Returns the structural signature: workload-specific digests plus
    provider-independent bookkeeping (message counts, posted/completed
    totals, fault counters, checker totals).  Raises
    :class:`~repro.check.invariants.ConformanceError` on any invariant
    violation, including the end-of-run quiesce audit.

    ``check=False`` skips the conformance checker (an armed checker
    forces every message down the packet path, so fast-forward
    equivalence tests compare unchecked runs); ``fidelity`` selects the
    simulation mode as on :class:`~repro.providers.registry.Testbed`.
    """
    tb = Testbed(provider, seed=seed, check=check, fidelity=fidelity)
    sig = dict(WORKLOADS[workload](tb))
    tb.run()          # drain teardown events before the quiesce audit
    if check:
        tb.checker.check_quiesced(tb)
        chk = tb.checker
        sig["checker"] = (chk.posts, chk.completions, chk.deliveries)
    for name, p in sorted(tb.providers.items()):
        e = p.engine
        sig[f"{name}.messages"] = (e.messages_sent, e.messages_received)
        sig[f"{name}.faults"] = (e.retransmissions, e.naks_sent, e.drops)
        posted = {"send": 0, "recv": 0}
        completed = {"send": 0, "recv": 0}
        for vi in p.vis.values():
            for wq in (vi.send_q, vi.recv_q):
                posted[wq.kind] += wq.total_posted
                completed[wq.kind] += wq.total_completed
        sig[f"{name}.posted"] = (posted["send"], posted["recv"])
        sig[f"{name}.completed"] = (completed["send"], completed["recv"])
    return sig


def compare_signatures(table: dict, providers) -> list[str]:
    """Pairwise-compare per-workload signatures against the first
    provider's; returns human-readable mismatch descriptions."""
    mismatches: list[str] = []
    for workload, sigs in table.items():
        present = [p for p in providers if p in sigs]
        if not present:
            continue
        ref_name, ref = present[0], sigs[present[0]]
        for p in present[1:]:
            sig = sigs[p]
            for key in sorted(set(ref) | set(sig)):
                if ref.get(key) != sig.get(key):
                    mismatches.append(
                        f"{workload}: {key} diverges — {ref_name} has "
                        f"{ref.get(key)!r}, {p} has {sig.get(key)!r}"
                    )
    return mismatches


# ---------------------------------------------------------------------------
# LogGP cross-check
# ---------------------------------------------------------------------------

def logp_consistency(provider: str,
                     sizes: tuple[int, ...] = (64, 1024, 4096),
                     max_rel_err: float = 0.25) -> dict:
    """Fit LogGP on a quick checked sweep and score self-consistency.

    Base latency is linear in size by construction, so the
    three-parameter model must reproduce the measured points closely;
    drift beyond ``max_rel_err`` means a provider's cost accounting
    went nonlinear where the model says it cannot.
    """
    from ..models.logp import fit_loggp
    from ..vibe.harness import TransferConfig, run_bandwidth, run_latency
    from ..vibe.metrics import BenchResult

    lat_points = [
        run_latency(provider,
                    TransferConfig(size=s, iters=8, warmup=2, check=True))
        for s in sizes
    ]
    bw_points = [
        run_bandwidth(provider,
                      TransferConfig(size=s, count=40, check=True))
        for s in sizes
    ]
    fit = fit_loggp(BenchResult("base_latency", provider, lat_points),
                    BenchResult("base_bandwidth", provider, bw_points))
    errs = [abs(fit.predict_latency(s) - m.latency_us) / m.latency_us
            for s, m in zip(sizes, lat_points)]
    mean_err = sum(errs) / len(errs)
    bw_ratio = (fit.predict_bandwidth(sizes[-1])
                / bw_points[-1].bandwidth_mbs)
    ok = (mean_err <= max_rel_err and fit.G > 0
          and 1.0 / 3.0 <= bw_ratio <= 3.0)
    return {
        "provider": provider,
        "mean_rel_err": round(mean_err, 4),
        "bw_ratio": round(bw_ratio, 3),
        "L": round(fit.L, 3),
        "G": round(fit.G, 6),
        "ok": ok,
    }
