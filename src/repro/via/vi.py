"""VI endpoints and their work queues (spec §2.1).

A VI is a bidirectional communication endpoint with a send queue and a
receive queue.  Descriptors posted to a queue complete in FIFO order —
a property the VIA spec requires of providers and that our tests assert
as an invariant.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..sim import Signal, Simulator
from ..sim.ids import id_space
from .constants import CompletionStatus, Reliability, ViState
from .descriptor import Descriptor
from .errors import VipStateError

if TYPE_CHECKING:  # pragma: no cover
    from .cq import CompletionQueue

__all__ = ["WorkQueue", "VI"]

_vi_ids = id_space("vi")


class WorkQueue:
    """One of a VI's two queues: posted (in-flight) and completed."""

    def __init__(self, sim: Simulator, vi: "VI", kind: str) -> None:
        assert kind in ("send", "recv")
        self.sim = sim
        self.vi = vi
        self.kind = kind
        self.posted: deque[Descriptor] = deque()
        #: descriptors not yet claimed by an in-flight operation; the
        #: engine binds incoming messages to these so two concurrent
        #: deliveries can never grab the same descriptor
        self._claimable: deque[Descriptor] = deque()
        #: out-of-order finishes parked until they reach the FIFO head
        self._ready: dict[int, tuple[CompletionStatus, int]] = {}
        self.completed: deque[Descriptor] = deque()
        self.signal = Signal(sim)  # fired once per completion
        self.cq: "CompletionQueue" | None = None
        self.total_posted = 0
        self.total_completed = 0

    # -- posting -----------------------------------------------------------
    def enqueue(self, desc: Descriptor) -> None:
        desc.posted = True
        self.posted.append(desc)
        self._claimable.append(desc)
        self.total_posted += 1
        chk = self.sim.checker
        if chk is not None:
            chk.on_post(self, desc)

    def head(self) -> Descriptor | None:
        return self.posted[0] if self.posted else None

    def claim(self) -> Descriptor | None:
        """Take the next unclaimed descriptor for an in-flight operation."""
        if self._claimable:
            return self._claimable.popleft()
        return None

    @property
    def claimable(self) -> int:
        return len(self._claimable)

    # -- completion (engine side) -------------------------------------------
    def complete_head(
        self, desc: Descriptor, status: CompletionStatus, length: int
    ) -> None:
        """Complete the FIFO head; it must be ``desc`` (spec invariant)."""
        if not self.posted or self.posted[0] is not desc:
            raise VipStateError(
                f"{self.kind} queue of VI {self.vi.vi_id}: completion out of "
                f"FIFO order (descriptor {desc.desc_id})"
            )
        self.posted.popleft()
        desc.posted = False
        desc.control.status = status
        desc.control.length = length
        desc.completed_at = self.sim.now
        self.total_completed += 1
        chk = self.sim.checker
        if chk is not None:
            # after the status writeback, before any CQ deposit
            chk.on_complete(self, desc, status)
        if self.cq is not None:
            self.cq.notify(self, desc)
        else:
            self.completed.append(desc)
        self.signal.fire()

    def finish(self, desc: Descriptor, status: CompletionStatus,
               length: int) -> list[Descriptor]:
        """Finish ``desc``, preserving FIFO completion order.

        If ``desc`` is not yet at the head (e.g. an RDMA read responded
        after a later local send finished processing) its result is
        parked and applied once everything ahead of it has finished —
        the in-order completion guarantee the VIA spec requires of every
        provider.  Returns the descriptors actually completed now.
        """
        self._ready[desc.desc_id] = (status, length)
        drained: list[Descriptor] = []
        while self.posted and self.posted[0].desc_id in self._ready:
            head = self.posted[0]
            st, ln = self._ready.pop(head.desc_id)
            self.complete_head(head, st, ln)
            drained.append(head)
        return drained

    def flush(self) -> list[Descriptor]:
        """Complete everything still posted with FLUSHED status
        (disconnect/destroy semantics)."""
        flushed = []
        self._ready.clear()
        self._claimable.clear()
        while self.posted:
            head = self.posted[0]
            self.complete_head(head, CompletionStatus.FLUSHED, 0)
            flushed.append(head)
        return flushed

    # -- reaping (host side) -------------------------------------------------
    def try_reap(self) -> Descriptor | None:
        if self.cq is not None:
            raise VipStateError(
                f"{self.kind} queue of VI {self.vi.vi_id} is bound to a CQ; "
                "reap through the CQ"
            )
        if self.completed:
            return self.completed.popleft()
        return None

    @property
    def outstanding(self) -> int:
        return len(self.posted)


class VI:
    """A Virtual Interface endpoint."""

    def __init__(
        self,
        sim: Simulator,
        node_name: str,
        reliability: Reliability = Reliability.UNRELIABLE,
        max_transfer_size: int = 1 << 20,
        ptag: int = 0,
    ) -> None:
        self.sim = sim
        self.vi_id = next(_vi_ids)
        self.node_name = node_name
        self.reliability = reliability
        self.max_transfer_size = max_transfer_size
        self.ptag = ptag
        self.state = ViState.IDLE
        self.send_q = WorkQueue(sim, self, "send")
        self.recv_q = WorkQueue(sim, self, "recv")
        #: peer coordinates once connected: (node_name, vi_id)
        self.peer: tuple[str, int] | None = None
        #: engine bookkeeping: next outgoing message sequence number
        self.next_send_seq = 0
        #: engine bookkeeping: receive-side reassembly cursor
        self.rx_state: dict | None = None
        #: engine bookkeeping: lowest not-yet-accepted incoming sequence
        #: number (duplicate retransmissions are below this)
        self.expected_rx_seq = 0

    # -- state machine -------------------------------------------------------
    def require_state(self, *states: ViState) -> None:
        if self.state not in states:
            allowed = "/".join(s.value for s in states)
            raise VipStateError(
                f"VI {self.vi_id} is {self.state.value}, needs {allowed}"
            )

    def to_state(self, new: ViState) -> None:
        _LEGAL = {
            ViState.IDLE: {ViState.CONNECT_PENDING, ViState.CONNECTED,
                           ViState.DESTROYED},
            ViState.CONNECT_PENDING: {ViState.CONNECTED, ViState.IDLE,
                                      ViState.ERROR, ViState.DESTROYED},
            ViState.CONNECTED: {ViState.DISCONNECTED, ViState.ERROR,
                                ViState.DESTROYED},
            ViState.DISCONNECTED: {ViState.IDLE, ViState.DESTROYED,
                                   ViState.CONNECTED},
            ViState.ERROR: {ViState.IDLE, ViState.DESTROYED},
            ViState.DESTROYED: set(),
        }
        if new not in _LEGAL[self.state]:
            raise VipStateError(
                f"VI {self.vi_id}: illegal transition "
                f"{self.state.value} -> {new.value}"
            )
        chk = self.sim.checker
        if chk is not None:
            chk.on_vi_transition(self, self.state, new)
        self.state = new

    @property
    def is_connected(self) -> bool:
        return self.state is ViState.CONNECTED

    # -- error recovery ------------------------------------------------------
    def drain(self) -> list[Descriptor]:
        """Pop every completed-but-unreaped descriptor from both queues.

        First step of the VIPL catastrophic-error recovery sequence: the
        application must consume all completions (most of them FLUSHED
        or error-status) before the VI can be reset.  Queues bound to a
        CQ drain through the CQ instead and are skipped here.
        """
        drained: list[Descriptor] = []
        for wq in (self.send_q, self.recv_q):
            if wq.cq is None:
                while wq.completed:
                    drained.append(wq.completed.popleft())
        return drained

    def reset(self) -> list[Descriptor]:
        """Return an ERROR/DISCONNECTED VI to IDLE (VipErrorReset analog).

        Clears the peer binding and all engine sequencing state so the
        endpoint can dial (or accept) a fresh connection; both sides of
        a re-established connection restart their sequence spaces from
        zero.  Work must already be flushed — resetting with descriptors
        still posted would silently orphan them.
        """
        self.require_state(ViState.ERROR, ViState.DISCONNECTED)
        for wq in (self.send_q, self.recv_q):
            if wq.posted:
                raise VipStateError(
                    f"VI {self.vi_id}: reset with {len(wq.posted)} "
                    f"descriptor(s) still on the {wq.kind} queue"
                )
        drained = self.drain()
        self.peer = None
        self.next_send_seq = 0
        self.rx_state = None
        self.expected_rx_seq = 0
        chk = self.sim.checker
        if chk is not None:
            chk.on_vi_reset(self)
        self.to_state(ViState.IDLE)
        return drained

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VI {self.vi_id} on {self.node_name} {self.state.value} "
            f"peer={self.peer}>"
        )
