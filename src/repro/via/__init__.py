"""The Virtual Interface Architecture specification layer.

Data structures and semantics of VIA 1.0 — VIs, descriptors, memory
registration, completion queues, connections — independent of how any
particular provider implements them.  Concrete (simulated) providers
live in :mod:`repro.providers`.
"""

from .connection import ConnRequest, ConnectionManager
from .constants import (
    ACK_WIRE_BYTES,
    CONTROL_WIRE_BYTES,
    DEFAULT_MAX_SEGMENTS,
    DESCRIPTOR_WIRE_BYTES,
    CompletionStatus,
    DescriptorOp,
    Reliability,
    ViState,
    WaitMode,
)
from .cq import CompletionQueue
from .descriptor import AddressSegment, ControlSegment, DataSegment, Descriptor
from .errors import (
    VipConnectionError,
    VipDescriptorError,
    VipError,
    VipErrorResource,
    VipInvalidParameter,
    VipNotSupported,
    VipProtectionError,
    VipStateError,
    VipTimeout,
)
from .memory import MemoryHandle, MemoryRegistry
from .nameservice import NameService
from .provider import NicAttributes, NicHandle, ViAttributes, ViaProvider
from .vi import VI, WorkQueue

__all__ = [
    "ACK_WIRE_BYTES",
    "AddressSegment",
    "CONTROL_WIRE_BYTES",
    "CompletionQueue",
    "CompletionStatus",
    "ConnRequest",
    "ConnectionManager",
    "ControlSegment",
    "DEFAULT_MAX_SEGMENTS",
    "DESCRIPTOR_WIRE_BYTES",
    "DataSegment",
    "Descriptor",
    "DescriptorOp",
    "MemoryHandle",
    "MemoryRegistry",
    "NameService",
    "NicAttributes",
    "NicHandle",
    "Reliability",
    "VI",
    "ViAttributes",
    "ViState",
    "ViaProvider",
    "VipConnectionError",
    "VipDescriptorError",
    "VipError",
    "VipErrorResource",
    "VipInvalidParameter",
    "VipNotSupported",
    "VipProtectionError",
    "VipStateError",
    "VipTimeout",
    "WaitMode",
    "WorkQueue",
]
