"""VIA name service (``VipNSGetHostByName`` analog).

Maps human host names to fabric node addresses.  Trivial by design, but
part of the API surface so higher layers (and the benchmarks) never
touch fabric internals.
"""

from __future__ import annotations

from .errors import VipConnectionError

__all__ = ["NameService"]


class NameService:
    """A per-testbed host-name directory."""

    def __init__(self) -> None:
        self._hosts: dict[str, str] = {}

    def register(self, hostname: str, node_name: str) -> None:
        if hostname in self._hosts and self._hosts[hostname] != node_name:
            raise VipConnectionError(
                f"hostname {hostname!r} already registered to "
                f"{self._hosts[hostname]!r}"
            )
        self._hosts[hostname] = node_name

    def resolve(self, hostname: str) -> str:
        try:
            return self._hosts[hostname]
        except KeyError:
            raise VipConnectionError(f"unknown host {hostname!r}") from None

    def hosts(self) -> tuple[str, ...]:
        return tuple(self._hosts)
