"""VIA error model.

The VI Provider Library (VIPL) reports ``VIP_*`` status codes; we map
the ones the benchmarks and layers need onto an exception hierarchy.
Descriptor-level completion errors are *not* exceptions — per the VIA
spec they are reported in the descriptor's control-segment status field
(see ``repro.via.descriptor.CompletionStatus``); exceptions are for
API-level misuse and environmental failures.
"""

from __future__ import annotations

__all__ = [
    "VipError",
    "VipInvalidParameter",
    "VipErrorResource",
    "VipStateError",
    "VipProtectionError",
    "VipDescriptorError",
    "VipTimeout",
    "VipConnectionError",
    "VipNotSupported",
]


class VipError(Exception):
    """Base of all VIA provider errors (VIP_ERROR analog)."""


class VipInvalidParameter(VipError):
    """VIP_INVALID_PARAMETER: malformed argument."""


class VipErrorResource(VipError):
    """VIP_ERROR_RESOURCE: out of VIs, CQ slots, pinnable memory, ..."""


class VipStateError(VipError):
    """VIP_ERROR_STATE: operation illegal in the object's current state."""


class VipProtectionError(VipError):
    """VIP_ERROR_MEMORY: bad memory handle, tag mismatch, out of range."""


class VipDescriptorError(VipError):
    """VIP_ERROR_DESC: descriptor malformed or posted twice."""


class VipTimeout(VipError):
    """VIP_TIMEOUT: a bounded wait expired."""


class VipConnectionError(VipError):
    """VIP_ERROR_CONN: peer rejected, disconnected, or unreachable."""


class VipNotSupported(VipError):
    """VIP_ERROR_NOT_SUPPORTED: optional feature absent in this provider."""
