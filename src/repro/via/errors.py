"""VIA error model.

The VI Provider Library (VIPL) reports ``VIP_*`` status codes; we map
the ones the benchmarks and layers need onto an exception hierarchy.
Descriptor-level completion errors are *not* exceptions — per the VIA
spec they are reported in the descriptor's control-segment status field
(see ``repro.via.descriptor.CompletionStatus``); exceptions are for
API-level misuse and environmental failures.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "AsyncError",
    "VIP_CATASTROPHIC",
    "VipError",
    "VipInvalidParameter",
    "VipErrorResource",
    "VipStateError",
    "VipProtectionError",
    "VipDescriptorError",
    "VipTimeout",
    "VipConnectionError",
    "VipNotSupported",
]


class VipError(Exception):
    """Base of all VIA provider errors (VIP_ERROR analog)."""


class VipInvalidParameter(VipError):
    """VIP_INVALID_PARAMETER: malformed argument."""


class VipErrorResource(VipError):
    """VIP_ERROR_RESOURCE: out of VIs, CQ slots, pinnable memory, ..."""


class VipStateError(VipError):
    """VIP_ERROR_STATE: operation illegal in the object's current state."""


class VipProtectionError(VipError):
    """VIP_ERROR_MEMORY: bad memory handle, tag mismatch, out of range."""


class VipDescriptorError(VipError):
    """VIP_ERROR_DESC: descriptor malformed or posted twice."""


class VipTimeout(VipError):
    """VIP_TIMEOUT: a bounded wait expired."""


class VipConnectionError(VipError):
    """VIP_ERROR_CONN: peer rejected, disconnected, or unreachable."""


class VipNotSupported(VipError):
    """VIP_ERROR_NOT_SUPPORTED: optional feature absent in this provider."""


#: asynchronous error code: the VI entered ERROR and needs the full
#: recovery path (drain, reset, reconnect, repost)
VIP_CATASTROPHIC = "catastrophic"


@dataclass(frozen=True)
class AsyncError:
    """An asynchronous provider error (VipErrorCallback analog).

    VIPL reports errors that cannot be attributed to a synchronous call
    — a transport failure detected by NIC firmware, say — through a
    registered error callback.  Providers record these and invoke any
    callbacks registered with ``register_error_callback``.
    """

    code: str  # e.g. VIP_CATASTROPHIC
    node: str
    vi_id: int
    time_us: float
    detail: str = ""
