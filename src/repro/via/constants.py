"""VIA enumerations and defaults (VIA spec 1.0 vocabulary)."""

from __future__ import annotations

import enum

__all__ = [
    "Reliability",
    "ViState",
    "DescriptorOp",
    "CompletionStatus",
    "WaitMode",
    "DEFAULT_MAX_SEGMENTS",
    "DESCRIPTOR_WIRE_BYTES",
    "ACK_WIRE_BYTES",
    "CONTROL_WIRE_BYTES",
]


class Reliability(enum.Enum):
    """VIA's three reliability levels (spec §2.4).

    - UNRELIABLE: delivery not guaranteed; sends complete locally.
    - RELIABLE_DELIVERY: data arrived at the destination *NIC*; sends
      complete on NIC-level acknowledgement.
    - RELIABLE_RECEPTION: data placed in the destination *memory*;
      sends complete on placement acknowledgement.
    """

    UNRELIABLE = "unreliable"
    RELIABLE_DELIVERY = "reliable_delivery"
    RELIABLE_RECEPTION = "reliable_reception"


class ViState(enum.Enum):
    """Connection state machine of a VI endpoint."""

    IDLE = "idle"
    CONNECT_PENDING = "connect_pending"
    CONNECTED = "connected"
    DISCONNECTED = "disconnected"
    ERROR = "error"
    DESTROYED = "destroyed"


class DescriptorOp(enum.Enum):
    SEND = "send"
    RECEIVE = "receive"
    RDMA_WRITE = "rdma_write"
    RDMA_READ = "rdma_read"


class CompletionStatus(enum.Enum):
    """Control-segment status field values."""

    PENDING = "pending"
    SUCCESS = "success"
    LENGTH_ERROR = "length_error"          # message larger than recv descriptor
    PROTECTION_ERROR = "protection_error"  # RDMA target check failed
    TRANSPORT_ERROR = "transport_error"    # retries exhausted / conn lost
    FLUSHED = "flushed"                    # queue drained at disconnect/destroy


class WaitMode(enum.Enum):
    """How completions are discovered (paper §3.2.1 polling vs blocking)."""

    POLL = "poll"
    BLOCK = "block"


#: VIA descriptors allow up to 252 data segments; providers usually cap
#: far lower.  Our default matches common provider limits.
DEFAULT_MAX_SEGMENTS = 16

#: Wire footprint of control structures (bytes) — used for packet sizing.
DESCRIPTOR_WIRE_BYTES = 64
ACK_WIRE_BYTES = 16
CONTROL_WIRE_BYTES = 48
