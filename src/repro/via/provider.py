"""The VIA provider API surface (VIPL analog).

``ViaProvider`` is one node's VIA software/firmware stack.  An
application opens it (``VipOpenNic``) to get a :class:`NicHandle`, which
exposes the full VIPL-flavoured operation set.  Every operation that
consumes simulated time is a *generator*: call it with ``yield from``
inside a simulation process.

The abstract methods here define semantics and signatures; timing and
design-choice behaviour live in ``repro.providers``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator

from ..hw.memory import VirtualRegion
from ..hw.node import Node
from ..sim import Event, Simulator
from .connection import ConnRequest
from .constants import Reliability, ViState, WaitMode
from .cq import CompletionQueue
from .descriptor import DataSegment, Descriptor
from .errors import VipNotSupported
from .memory import MemoryHandle
from .nameservice import NameService
from .vi import VI

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.cpu import CpuActor

__all__ = ["ViaProvider", "NicHandle", "NicAttributes", "ViAttributes"]

Op = Generator[Event, Any, Any]  # the type of every timed operation


@dataclass(frozen=True)
class NicAttributes:
    """VipQueryNic: the provider's static capabilities and limits."""

    name: str
    max_transfer_size: int
    max_segments: int
    max_outstanding_descriptors: int
    mtu: int
    supports_rdma_write: bool
    supports_rdma_read: bool
    reliability_levels: tuple[Reliability, ...]
    nic_translation_entries: int


@dataclass(frozen=True)
class ViAttributes:
    """VipQueryVi: one endpoint's current state and queue occupancy."""

    vi_id: int
    state: "ViState"
    reliability: Reliability
    peer: tuple[str, int] | None
    send_posted: int
    send_completed: int
    recv_posted: int
    recv_completed: int
    max_transfer_size: int


class ViaProvider(abc.ABC):
    """Abstract per-node VIA provider."""

    #: short identifier ("mvia", "bvia", "clan", ...)
    name: str = "abstract"

    def __init__(self, node: Node, nameservice: NameService) -> None:
        self.node = node
        self.sim: Simulator = node.sim
        self.nameservice = nameservice
        nameservice.register(node.name, node.name)

    # -- session -----------------------------------------------------------
    def open(self, actor_name: str) -> "NicHandle":
        """VipOpenNic: bind an application context to this provider."""
        return NicHandle(self, self.node.cpu.actor(actor_name))

    # -- VI lifecycle --------------------------------------------------------
    @abc.abstractmethod
    def vi_create(
        self,
        handle: "NicHandle",
        reliability: Reliability | None = None,
        send_cq: CompletionQueue | None = None,
        recv_cq: CompletionQueue | None = None,
    ) -> Op:
        """VipCreateVi: returns a new :class:`VI` in IDLE state."""

    @abc.abstractmethod
    def vi_destroy(self, handle: "NicHandle", vi: VI) -> Op:
        """VipDestroyVi: VI must be idle/disconnected with empty queues."""

    # -- memory ----------------------------------------------------------------
    @abc.abstractmethod
    def register_mem(
        self,
        handle: "NicHandle",
        address: int,
        length: int,
        enable_rdma_write: bool = True,
        enable_rdma_read: bool = False,
    ) -> Op:
        """VipRegisterMem: pin pages, install translations; returns
        :class:`MemoryHandle`."""

    @abc.abstractmethod
    def deregister_mem(self, handle: "NicHandle", mh: MemoryHandle) -> Op:
        """VipDeregisterMem."""

    # -- completion queues -------------------------------------------------------
    @abc.abstractmethod
    def cq_create(self, handle: "NicHandle", depth: int = 1024) -> Op:
        """VipCreateCQ: returns :class:`CompletionQueue`."""

    @abc.abstractmethod
    def cq_destroy(self, handle: "NicHandle", cq: CompletionQueue) -> Op:
        """VipDestroyCQ."""

    # -- connections ---------------------------------------------------------------
    @abc.abstractmethod
    def connect_request(
        self,
        handle: "NicHandle",
        vi: VI,
        remote_host: str,
        discriminator: int,
        timeout: float | None = None,
    ) -> Op:
        """VipConnectRequest + VipConnectWait(client side): dial and wait."""

    @abc.abstractmethod
    def connect_wait(
        self, handle: "NicHandle", discriminator: int,
        timeout: float | None = None,
    ) -> Op:
        """VipConnectWait (server side): returns :class:`ConnRequest`."""

    @abc.abstractmethod
    def connect_accept(
        self, handle: "NicHandle", request: ConnRequest, vi: VI
    ) -> Op:
        """VipConnectAccept: bind ``vi`` to the requesting client."""

    @abc.abstractmethod
    def connect_reject(self, handle: "NicHandle", request: ConnRequest) -> Op:
        """VipConnectReject."""

    @abc.abstractmethod
    def disconnect(self, handle: "NicHandle", vi: VI) -> Op:
        """VipDisconnect: tear the connection down, flush queues."""

    # -- error recovery ------------------------------------------------------
    def vi_reset(self, handle: "NicHandle", vi: VI) -> Op:
        """VipErrorReset analog: return an ERROR/DISCONNECTED VI to IDLE.

        Completions must already be drained.  Optional: the base raises
        VIP_ERROR_NOT_SUPPORTED.
        """
        raise VipNotSupported(f"{self.name} does not implement VI reset")
        yield  # pragma: no cover - unreachable; makes this a generator

    def register_error_callback(self, callback) -> None:
        """VipErrorCallback analog: ``callback(AsyncError)`` is invoked
        on asynchronous provider errors (e.g. a VI entering ERROR)."""
        raise VipNotSupported(
            f"{self.name} does not implement error callbacks"
        )

    # -- data transfer ---------------------------------------------------------------
    @abc.abstractmethod
    def post_send(self, handle: "NicHandle", vi: VI, desc: Descriptor) -> Op:
        """VipPostSend: post a send/RDMA descriptor and ring the doorbell."""

    @abc.abstractmethod
    def post_recv(self, handle: "NicHandle", vi: VI, desc: Descriptor) -> Op:
        """VipPostRecv."""

    @abc.abstractmethod
    def send_done(self, handle: "NicHandle", vi: VI) -> Op:
        """VipSendDone: non-blocking; completed Descriptor or None."""

    @abc.abstractmethod
    def recv_done(self, handle: "NicHandle", vi: VI) -> Op:
        """VipRecvDone."""

    @abc.abstractmethod
    def send_wait(
        self, handle: "NicHandle", vi: VI,
        mode: WaitMode = WaitMode.POLL, timeout: float | None = None,
    ) -> Op:
        """VipSendWait: poll (spin) or block until a send completes."""

    @abc.abstractmethod
    def recv_wait(
        self, handle: "NicHandle", vi: VI,
        mode: WaitMode = WaitMode.POLL, timeout: float | None = None,
    ) -> Op:
        """VipRecvWait."""

    @abc.abstractmethod
    def cq_done(self, handle: "NicHandle", cq: CompletionQueue) -> Op:
        """VipCQDone: non-blocking; (work_queue, Descriptor) or None."""

    @abc.abstractmethod
    def cq_wait(
        self, handle: "NicHandle", cq: CompletionQueue,
        mode: WaitMode = WaitMode.POLL, timeout: float | None = None,
    ) -> Op:
        """VipCQWait."""

    # -- capabilities ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def max_transfer_size(self) -> int:
        """Largest descriptor the provider accepts (bytes)."""

    @property
    @abc.abstractmethod
    def supports_rdma_read(self) -> bool: ...

    @property
    @abc.abstractmethod
    def default_reliability(self) -> Reliability: ...

    # -- queries (pure state reads, free of simulated time) -----------------
    @abc.abstractmethod
    def query_nic(self) -> NicAttributes:
        """VipQueryNic: static capabilities and limits."""

    def query_vi(self, vi: VI) -> ViAttributes:
        """VipQueryVi: current endpoint state and queue occupancy."""
        return ViAttributes(
            vi_id=vi.vi_id,
            state=vi.state,
            reliability=vi.reliability,
            peer=vi.peer,
            send_posted=vi.send_q.outstanding,
            send_completed=vi.send_q.total_completed,
            recv_posted=vi.recv_q.outstanding,
            recv_completed=vi.recv_q.total_completed,
            max_transfer_size=vi.max_transfer_size,
        )


class NicHandle:
    """An application's session with a provider (VipOpenNic result).

    Thin facade: binds a CPU actor (for rusage accounting) and forwards
    to the provider.  Also offers buffer-management conveniences the
    benchmarks use heavily.
    """

    def __init__(self, provider: ViaProvider, actor: "CpuActor") -> None:
        self.provider = provider
        self.actor = actor
        #: protection tag shared by this session's VIs and registrations
        from .memory import new_protection_tag

        self.ptag = new_protection_tag()

    # -- conveniences -----------------------------------------------------
    @property
    def sim(self) -> Simulator:
        return self.provider.sim

    @property
    def node(self) -> Node:
        return self.provider.node

    def alloc(self, length: int) -> VirtualRegion:
        """Allocate an (unregistered) buffer in host memory."""
        return self.node.mem.alloc(length)

    def segment(self, region: VirtualRegion, mh: MemoryHandle,
                offset: int = 0, length: int | None = None) -> DataSegment:
        """Build a DataSegment for a slice of ``region``."""
        if length is None:
            length = region.length - offset
        return DataSegment(region.base + offset, length, mh)

    def write(self, region: VirtualRegion, data: bytes, offset: int = 0) -> None:
        self.node.mem.write(region.base + offset, data)

    def read(self, region: VirtualRegion, length: int, offset: int = 0) -> bytes:
        return self.node.mem.read(region.base + offset, length)

    # -- forwarding API (all timed generators) ------------------------------
    def create_vi(self, reliability: Reliability | None = None,
                  send_cq: CompletionQueue | None = None,
                  recv_cq: CompletionQueue | None = None) -> Op:
        return self.provider.vi_create(self, reliability, send_cq, recv_cq)

    def destroy_vi(self, vi: VI) -> Op:
        return self.provider.vi_destroy(self, vi)

    def register_mem(self, region_or_addr, length: int | None = None,
                     enable_rdma_write: bool = True,
                     enable_rdma_read: bool = False) -> Op:
        if isinstance(region_or_addr, VirtualRegion):
            address = region_or_addr.base
            length = region_or_addr.length if length is None else length
        else:
            address = int(region_or_addr)
            if length is None:
                raise TypeError("length required when passing a raw address")
        return self.provider.register_mem(
            self, address, length, enable_rdma_write, enable_rdma_read
        )

    def deregister_mem(self, mh: MemoryHandle) -> Op:
        return self.provider.deregister_mem(self, mh)

    def create_cq(self, depth: int = 1024) -> Op:
        return self.provider.cq_create(self, depth)

    def destroy_cq(self, cq: CompletionQueue) -> Op:
        return self.provider.cq_destroy(self, cq)

    def connect(self, vi: VI, remote_host: str, discriminator: int,
                timeout: float | None = None) -> Op:
        return self.provider.connect_request(
            self, vi, remote_host, discriminator, timeout
        )

    def connect_wait(self, discriminator: int,
                     timeout: float | None = None) -> Op:
        return self.provider.connect_wait(self, discriminator, timeout)

    def accept(self, request: ConnRequest, vi: VI) -> Op:
        return self.provider.connect_accept(self, request, vi)

    def reject(self, request: ConnRequest) -> Op:
        return self.provider.connect_reject(self, request)

    def disconnect(self, vi: VI) -> Op:
        return self.provider.disconnect(self, vi)

    def reset_vi(self, vi: VI) -> Op:
        return self.provider.vi_reset(self, vi)

    def post_send(self, vi: VI, desc: Descriptor) -> Op:
        return self.provider.post_send(self, vi, desc)

    def post_recv(self, vi: VI, desc: Descriptor) -> Op:
        return self.provider.post_recv(self, vi, desc)

    def send_done(self, vi: VI) -> Op:
        return self.provider.send_done(self, vi)

    def recv_done(self, vi: VI) -> Op:
        return self.provider.recv_done(self, vi)

    def send_wait(self, vi: VI, mode: WaitMode = WaitMode.POLL,
                  timeout: float | None = None) -> Op:
        return self.provider.send_wait(self, vi, mode, timeout)

    def recv_wait(self, vi: VI, mode: WaitMode = WaitMode.POLL,
                  timeout: float | None = None) -> Op:
        return self.provider.recv_wait(self, vi, mode, timeout)

    def cq_done(self, cq: CompletionQueue) -> Op:
        return self.provider.cq_done(self, cq)

    def cq_wait(self, cq: CompletionQueue, mode: WaitMode = WaitMode.POLL,
                timeout: float | None = None) -> Op:
        return self.provider.cq_wait(self, cq, mode, timeout)

    # -- queries -----------------------------------------------------------
    def query_nic(self) -> NicAttributes:
        return self.provider.query_nic()

    def query_vi(self, vi: VI) -> ViAttributes:
        return self.provider.query_vi(vi)
