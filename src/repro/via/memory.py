"""VIA memory registration semantics.

``VipRegisterMem`` pins the pages of a user buffer and returns a
*memory handle*; every data segment must name a handle covering its
range, and RDMA targets are checked against the handle's enable bits
and protection tag (spec §2.3).  The *cost* of registration is provider
policy (measured by the paper's Fig. 1/2); the *semantics* here are
provider-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.memory import MemorySystem
from ..sim.ids import id_space
from .errors import VipProtectionError, VipStateError

__all__ = ["MemoryHandle", "MemoryRegistry"]

_handle_ids = id_space("mem_handle")
_tag_ids = id_space("ptag")


def new_protection_tag() -> int:
    """Allocate a fresh protection tag (VipCreatePtag analog)."""
    return next(_tag_ids)


@dataclass
class MemoryHandle:
    """Result of registering a memory region."""

    handle_id: int
    address: int
    length: int
    tag: int
    pages: list[int] = field(repr=False)
    enable_rdma_write: bool = True
    enable_rdma_read: bool = False
    active: bool = True

    @property
    def end(self) -> int:
        return self.address + self.length

    def covers(self, address: int, length: int) -> bool:
        return self.address <= address and address + length <= self.end

    @property
    def page_count(self) -> int:
        return len(self.pages)


class MemoryRegistry:
    """Per-node table of registered regions, backed by real pinning."""

    def __init__(self, mem: MemorySystem) -> None:
        self.mem = mem
        self._handles: dict[int, MemoryHandle] = {}

    def __len__(self) -> int:
        return len(self._handles)

    def register(
        self,
        address: int,
        length: int,
        tag: int,
        enable_rdma_write: bool = True,
        enable_rdma_read: bool = False,
    ) -> MemoryHandle:
        """Pin the pages and record the handle (semantics only, no cost)."""
        if length <= 0:
            raise VipProtectionError(f"registration length must be positive, got {length}")
        pages = self.mem.pin(address, length)  # raises on bad range
        handle = MemoryHandle(
            handle_id=next(_handle_ids),
            address=address,
            length=length,
            tag=tag,
            pages=pages,
            enable_rdma_write=enable_rdma_write,
            enable_rdma_read=enable_rdma_read,
        )
        self._handles[handle.handle_id] = handle
        return handle

    def deregister(self, handle: MemoryHandle) -> None:
        if not handle.active or handle.handle_id not in self._handles:
            raise VipStateError(f"handle {handle.handle_id} is not registered")
        self.mem.unpin(handle.pages)
        handle.active = False
        del self._handles[handle.handle_id]

    def is_registered(self, handle: MemoryHandle) -> bool:
        """True while ``handle`` is the live registration for its id."""
        return self._handles.get(handle.handle_id) is handle

    def lookup(self, handle_id: int) -> MemoryHandle:
        handle = self._handles.get(handle_id)
        if handle is None:
            raise VipProtectionError(f"unknown memory handle {handle_id}")
        return handle

    def check_local(self, address: int, length: int, handle: MemoryHandle,
                    tag: int) -> None:
        """Validate a data segment against its handle (post-time check)."""
        if not handle.active:
            raise VipProtectionError(
                f"handle {handle.handle_id} has been deregistered"
            )
        if handle.tag != tag:
            raise VipProtectionError(
                f"protection tag mismatch: handle has {handle.tag}, VI has {tag}"
            )
        if not handle.covers(address, length):
            raise VipProtectionError(
                f"segment [{address:#x}, +{length}) outside handle "
                f"[{handle.address:#x}, +{handle.length})"
            )

    def check_rdma_target(
        self, address: int, length: int, handle_id: int, write: bool
    ) -> MemoryHandle:
        """Validate an incoming RDMA against the target node's handles.

        Returns the handle on success; raises VipProtectionError which the
        NIC engine converts to a PROTECTION_ERROR completion/NAK.
        """
        handle = self.lookup(handle_id)
        if not handle.covers(address, length):
            raise VipProtectionError(
                f"RDMA target [{address:#x}, +{length}) outside handle "
                f"{handle_id}"
            )
        if write and not handle.enable_rdma_write:
            raise VipProtectionError(f"handle {handle_id}: RDMA write disabled")
        if not write and not handle.enable_rdma_read:
            raise VipProtectionError(f"handle {handle_id}: RDMA read disabled")
        return handle
