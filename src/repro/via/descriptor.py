"""VIA descriptors: control segment + data segments + address segment.

A descriptor is the unit of work posted to a VI's send or receive
queue (spec §2.2).  It carries:

- a **control segment** (CS): operation, flags, immediate data, and —
  written back by the provider on completion — status and length;
- zero or more **data segments** (DS): (virtual address, length,
  memory handle) triples describing a gather (send) or scatter
  (receive) list in *registered* memory;
- for RDMA operations, one **address segment** (AS) naming the remote
  buffer (virtual address + the remote side's memory handle).

Descriptors are application-owned and reusable, but must not be touched
while posted; the provider enforces that by tracking a ``posted`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..sim.ids import id_space
from .constants import CompletionStatus, DescriptorOp
from .errors import VipDescriptorError, VipInvalidParameter

if TYPE_CHECKING:  # pragma: no cover
    from .memory import MemoryHandle

__all__ = ["DataSegment", "AddressSegment", "ControlSegment", "Descriptor"]

_desc_ids = id_space("desc")


@dataclass(frozen=True)
class DataSegment:
    """One entry of a gather/scatter list."""

    address: int
    length: int
    handle: "MemoryHandle"

    def __post_init__(self) -> None:
        if self.address < 0:
            raise VipInvalidParameter(f"negative segment address {self.address}")
        if self.length < 0:
            raise VipInvalidParameter(f"negative segment length {self.length}")


@dataclass(frozen=True)
class AddressSegment:
    """Remote buffer coordinates for RDMA operations."""

    address: int
    remote_handle_id: int

    def __post_init__(self) -> None:
        if self.address < 0:
            raise VipInvalidParameter(f"negative remote address {self.address}")


@dataclass
class ControlSegment:
    """Operation + provider-written completion fields."""

    op: DescriptorOp
    immediate: int | None = None
    status: CompletionStatus = CompletionStatus.PENDING
    length: int = 0  # bytes actually transferred, written on completion


@dataclass
class Descriptor:
    """A posted unit of work.  Build via the class-method constructors."""

    control: ControlSegment
    segments: tuple[DataSegment, ...] = ()
    address_segment: AddressSegment | None = None
    desc_id: int = field(default_factory=lambda: next(_desc_ids))
    posted: bool = False
    #: provider-written: simulated time of completion (for benchmarks)
    completed_at: float | None = None

    # -- constructors ----------------------------------------------------
    @classmethod
    def send(
        cls,
        segments: tuple[DataSegment, ...] | list[DataSegment] = (),
        immediate: int | None = None,
    ) -> "Descriptor":
        return cls(ControlSegment(DescriptorOp.SEND, immediate=immediate),
                   tuple(segments))

    @classmethod
    def recv(
        cls, segments: tuple[DataSegment, ...] | list[DataSegment] = ()
    ) -> "Descriptor":
        return cls(ControlSegment(DescriptorOp.RECEIVE), tuple(segments))

    @classmethod
    def rdma_write(
        cls,
        segments: tuple[DataSegment, ...] | list[DataSegment],
        remote_address: int,
        remote_handle_id: int,
        immediate: int | None = None,
    ) -> "Descriptor":
        return cls(
            ControlSegment(DescriptorOp.RDMA_WRITE, immediate=immediate),
            tuple(segments),
            AddressSegment(remote_address, remote_handle_id),
        )

    @classmethod
    def rdma_read(
        cls,
        segments: tuple[DataSegment, ...] | list[DataSegment],
        remote_address: int,
        remote_handle_id: int,
    ) -> "Descriptor":
        return cls(
            ControlSegment(DescriptorOp.RDMA_READ),
            tuple(segments),
            AddressSegment(remote_address, remote_handle_id),
        )

    # -- derived properties ----------------------------------------------
    @property
    def op(self) -> DescriptorOp:
        return self.control.op

    @property
    def total_length(self) -> int:
        return sum(seg.length for seg in self.segments)

    @property
    def status(self) -> CompletionStatus:
        return self.control.status

    @property
    def is_complete(self) -> bool:
        return self.control.status is not CompletionStatus.PENDING

    # -- validation --------------------------------------------------------
    def validate(self, max_segments: int, max_transfer_size: int) -> None:
        """Structural checks done at post time (VIP_ERROR_DESC analog)."""
        if self.posted:
            raise VipDescriptorError(
                f"descriptor {self.desc_id} is already posted"
            )
        if len(self.segments) > max_segments:
            raise VipDescriptorError(
                f"{len(self.segments)} segments exceeds provider limit "
                f"of {max_segments}"
            )
        if self.total_length > max_transfer_size:
            raise VipDescriptorError(
                f"transfer of {self.total_length} bytes exceeds provider "
                f"maximum transfer size of {max_transfer_size}"
            )
        needs_as = self.op in (DescriptorOp.RDMA_WRITE, DescriptorOp.RDMA_READ)
        if needs_as and self.address_segment is None:
            raise VipDescriptorError(f"{self.op.value} requires an address segment")
        if not needs_as and self.address_segment is not None:
            raise VipDescriptorError(
                f"{self.op.value} must not carry an address segment"
            )
        if self.op is DescriptorOp.RDMA_READ and self.control.immediate is not None:
            raise VipDescriptorError("RDMA read cannot carry immediate data")
        if not self.segments and self.control.immediate is None:
            if self.op in (DescriptorOp.RDMA_WRITE, DescriptorOp.RDMA_READ):
                raise VipDescriptorError(f"{self.op.value} needs data segments")

    def reset(self) -> None:
        """Re-arm a completed descriptor for reuse (application helper)."""
        if self.posted:
            raise VipDescriptorError("cannot reset a posted descriptor")
        self.control.status = CompletionStatus.PENDING
        self.control.length = 0
        self.completed_at = None
