"""VIA connection management (spec §2.1).

VIA is connection oriented: a client VI dials ``(remote host,
discriminator)``; a server VI waits on the discriminator and accepts or
rejects.  This module is the per-node matchmaking state; the wire
handshake itself is driven by the provider engine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..sim import Event, Simulator
from ..sim.ids import id_space
from .constants import Reliability
from .errors import VipConnectionError

__all__ = ["ConnRequest", "ConnectionManager", "backoff_schedule"]

_conn_ids = id_space("conn")


def backoff_schedule(
    base: float,
    retries: int,
    factor: float = 2.0,
    cap: float | None = None,
) -> list[float]:
    """Deterministic exponential backoff for handshake retransmission.

    Returns ``retries + 1`` waits: attempt ``k`` (0-based) waits
    ``min(base * factor**k, cap)`` µs for a response before the next
    retransmission — or, for the last entry, before giving up.  Pure and
    seedless so the retransmission schedule is a testable golden.
    """
    if base <= 0:
        raise ValueError("base must be positive")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if factor < 1.0:
        raise ValueError("factor must be >= 1")
    waits = []
    for k in range(retries + 1):
        wait = base * factor**k
        if cap is not None:
            wait = min(wait, cap)
        waits.append(wait)
    return waits


@dataclass
class ConnRequest:
    """An incoming connection attempt parked at the server."""

    conn_id: int
    client_node: str
    client_vi_id: int
    discriminator: int
    reliability: Reliability


class ConnectionManager:
    """Per-node discriminator matchmaking."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        # connect_wait() callers parked per discriminator
        self._waiters: dict[int, deque[Event]] = {}
        # requests that arrived before anyone waited
        self._pending: dict[int, deque[ConnRequest]] = {}
        # client side: conn_id -> event fired with (server_node, server_vi_id)
        # or failed with VipConnectionError
        self._outstanding: dict[int, Event] = {}
        # server side: conn_ids ever delivered, so a retransmitted
        # conn_req is not parked as a second request
        self._seen: set[int] = set()

    # -- client side ---------------------------------------------------------
    def new_request_id(self) -> int:
        return next(_conn_ids)

    def track(self, conn_id: int) -> Event:
        ev = Event(self.sim)
        self._outstanding[conn_id] = ev
        return ev

    def resolve(self, conn_id: int, server_node: str, server_vi_id: int) -> None:
        ev = self._outstanding.pop(conn_id, None)
        if ev is not None and not ev.triggered:
            ev.succeed((server_node, server_vi_id))

    def reject(self, conn_id: int, reason: str) -> None:
        ev = self._outstanding.pop(conn_id, None)
        if ev is not None and not ev.triggered:
            ev.fail(VipConnectionError(reason))
            ev.defuse()  # a late rejection may find nobody waiting

    def forget(self, conn_id: int) -> None:
        """Stop tracking an abandoned request (timeout cleanup)."""
        self._outstanding.pop(conn_id, None)

    def outstanding_count(self) -> int:
        """Client requests still awaiting a response (introspection)."""
        return len(self._outstanding)

    # -- server side ---------------------------------------------------------
    def seen(self, conn_id: int) -> bool:
        """Whether this conn_id was already delivered (duplicate filter)."""
        return conn_id in self._seen

    def pending_count(self, discriminator: int) -> int:
        """Requests parked on ``discriminator`` with nobody waiting —
        lets a busy server notice a client redial after an error."""
        return len(self._pending.get(discriminator, ()))

    def deliver(self, request: ConnRequest) -> None:
        """An incoming conn_req packet landed on this node."""
        disc = request.discriminator
        self._seen.add(request.conn_id)
        waiters = self._waiters.get(disc)
        if waiters:
            waiters.popleft().succeed(request)
            if not waiters:
                del self._waiters[disc]
        else:
            # a VI dials one connection at a time, so a fresh conn_id
            # from an endpoint supersedes any parked request of theirs:
            # the client has given up on it and would ignore its ack
            pending = self._pending.setdefault(disc, deque())
            endpoint = (request.client_node, request.client_vi_id)
            stale = [r for r in pending
                     if (r.client_node, r.client_vi_id) == endpoint]
            for r in stale:
                pending.remove(r)
            pending.append(request)

    def wait_for(self, discriminator: int) -> Event:
        """Event whose value is the next ConnRequest on ``discriminator``."""
        ev = Event(self.sim)
        pending = self._pending.get(discriminator)
        if pending:
            ev.succeed(pending.popleft())
            if not pending:
                del self._pending[discriminator]
        else:
            self._waiters.setdefault(discriminator, deque()).append(ev)
        return ev
