"""VIA connection management (spec §2.1).

VIA is connection oriented: a client VI dials ``(remote host,
discriminator)``; a server VI waits on the discriminator and accepts or
rejects.  This module is the per-node matchmaking state; the wire
handshake itself is driven by the provider engine.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass

from ..sim import Event, Simulator
from .constants import Reliability
from .errors import VipConnectionError

__all__ = ["ConnRequest", "ConnectionManager"]

_conn_ids = itertools.count(1)


@dataclass
class ConnRequest:
    """An incoming connection attempt parked at the server."""

    conn_id: int
    client_node: str
    client_vi_id: int
    discriminator: int
    reliability: Reliability


class ConnectionManager:
    """Per-node discriminator matchmaking."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        # connect_wait() callers parked per discriminator
        self._waiters: dict[int, deque[Event]] = {}
        # requests that arrived before anyone waited
        self._pending: dict[int, deque[ConnRequest]] = {}
        # client side: conn_id -> event fired with (server_node, server_vi_id)
        # or failed with VipConnectionError
        self._outstanding: dict[int, Event] = {}

    # -- client side ---------------------------------------------------------
    def new_request_id(self) -> int:
        return next(_conn_ids)

    def track(self, conn_id: int) -> Event:
        ev = Event(self.sim)
        self._outstanding[conn_id] = ev
        return ev

    def resolve(self, conn_id: int, server_node: str, server_vi_id: int) -> None:
        ev = self._outstanding.pop(conn_id, None)
        if ev is not None and not ev.triggered:
            ev.succeed((server_node, server_vi_id))

    def reject(self, conn_id: int, reason: str) -> None:
        ev = self._outstanding.pop(conn_id, None)
        if ev is not None and not ev.triggered:
            ev.fail(VipConnectionError(reason))
            ev.defuse()  # a late rejection may find nobody waiting

    def forget(self, conn_id: int) -> None:
        """Stop tracking an abandoned request (timeout cleanup)."""
        self._outstanding.pop(conn_id, None)

    def outstanding_count(self) -> int:
        """Client requests still awaiting a response (introspection)."""
        return len(self._outstanding)

    # -- server side ---------------------------------------------------------
    def deliver(self, request: ConnRequest) -> None:
        """An incoming conn_req packet landed on this node."""
        disc = request.discriminator
        waiters = self._waiters.get(disc)
        if waiters:
            waiters.popleft().succeed(request)
            if not waiters:
                del self._waiters[disc]
        else:
            self._pending.setdefault(disc, deque()).append(request)

    def wait_for(self, discriminator: int) -> Event:
        """Event whose value is the next ConnRequest on ``discriminator``."""
        ev = Event(self.sim)
        pending = self._pending.get(discriminator)
        if pending:
            ev.succeed(pending.popleft())
            if not pending:
                del self._pending[discriminator]
        else:
            self._waiters.setdefault(discriminator, deque()).append(ev)
        return ev
