"""Completion queues (spec §2.2): merged completion notification.

A CQ can be associated with any number of work queues; each completion
on an associated queue deposits an entry ``(work_queue, descriptor)``.
When a work queue is bound to a CQ, its completions are discovered
*through the CQ* (``cq_done``/``cq_wait``) — direct ``send_done`` /
``recv_done`` on that queue is a state error.  (The VIA spec technically
allows a two-step CQDone-then-RecvDone dance; we collapse it to one
step, which changes no timing the benchmarks can observe and is noted in
DESIGN.md.)
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..sim import Signal, Simulator
from ..sim.ids import id_space
from .errors import VipErrorResource, VipStateError

if TYPE_CHECKING:  # pragma: no cover
    from .descriptor import Descriptor
    from .vi import WorkQueue

__all__ = ["CompletionQueue"]

_cq_ids = id_space("cq")


class CompletionQueue:
    """A queue of completion entries fed by associated work queues."""

    def __init__(self, sim: Simulator, depth: int = 1024) -> None:
        if depth < 1:
            raise VipErrorResource("CQ depth must be >= 1")
        self.sim = sim
        self.cq_id = next(_cq_ids)
        self.depth = depth
        self.entries: deque[tuple["WorkQueue", "Descriptor"]] = deque()
        self.signal = Signal(sim)
        self.attached = 0
        self.destroyed = False
        self.total_notifications = 0
        self.max_depth = 0

    def _check_live(self) -> None:
        if self.destroyed:
            raise VipStateError(f"CQ {self.cq_id} has been destroyed")

    def notify(self, wq: "WorkQueue", desc: "Descriptor") -> None:
        """Deposit a completion entry (called by the provider engine)."""
        self._check_live()
        if len(self.entries) >= self.depth:
            raise VipErrorResource(
                f"CQ {self.cq_id} overflow (depth {self.depth})"
            )
        chk = self.sim.checker
        if chk is not None:
            chk.on_cq_deposit(self, wq, desc)
        self.entries.append((wq, desc))
        self.total_notifications += 1
        if len(self.entries) > self.max_depth:
            self.max_depth = len(self.entries)
        self.signal.fire()

    def try_pop(self) -> tuple["WorkQueue", "Descriptor"] | None:
        """Non-blocking poll for the next entry."""
        self._check_live()
        if self.entries:
            return self.entries.popleft()
        return None

    def destroy(self) -> None:
        self._check_live()
        if self.attached:
            raise VipStateError(
                f"CQ {self.cq_id} still has {self.attached} work queues attached"
            )
        if self.entries:
            raise VipStateError(
                f"CQ {self.cq_id} destroyed with {len(self.entries)} unreaped entries"
            )
        self.destroyed = True
