"""Reflective structural fingerprint of a live simulation.

:func:`fingerprint` walks an arbitrary object graph — dataclasses,
``__slots__`` classes, dicts, deques, sets, RNG streams, numpy arrays,
even suspended generator frames — and folds every reachable value into
one SHA-256.  Two simulations with the same fingerprint are in the same
observable state for every encoding this repo defines (golden traces,
harvested metrics, reports), because all of those are derived from the
walked attributes.

The replay tier uses it as a *divergence detector*: after rebuilding a
session and re-running it to the captured event cursor, the restored
fingerprint must equal the captured one, or the genesis recipe no
longer reproduces the run (code drift, an unpinned iteration order, a
hidden wall-clock read) and restore refuses with
:class:`~repro.snap.format.SnapshotDivergenceError` rather than handing
back a silently different simulation.

Canonicalization rules (must stay in lockstep with ``state.py``):

- floats hash via their IEEE-754 big-endian bytes (``-0.0 != 0.0``,
  NaN is stable);
- dicts hash in insertion order — the kernel already guarantees
  deterministic insertion everywhere (that is what the equivalence
  suite proves), so order *is* state;
- sets/frozensets hash as their elements' digests, sorted, because set
  iteration order depends on PYTHONHASHSEED;
- ``random.Random`` hashes its full Mersenne state tuple;
- generators hash code identity + instruction pointer + locals — the
  value stack is invisible from Python, which is exactly why the replay
  tier re-executes instead of serializing frames;
- cycles and shared structure hash as a back-reference to the first
  visit's ordinal, so aliasing is part of the fingerprint too.
"""

from __future__ import annotations

import hashlib
import random
import struct
from collections import OrderedDict, deque

__all__ = ["fingerprint", "fingerprint_update"]

_F64 = struct.Struct(">d")
_I64 = struct.Struct(">q")

try:  # numpy ships in the environment; gate anyway for minimal installs
    import numpy as _np
except Exception:  # pragma: no cover - numpy is available in CI
    _np = None


class _Hasher:
    """One fingerprint walk: a SHA-256 plus a first-visit memo."""

    def __init__(self) -> None:
        self.h = hashlib.sha256()
        # id(obj) -> ordinal of first visit; keepalive prevents CPython
        # from recycling an id mid-walk and aliasing two distinct objects
        self.memo: dict[int, int] = {}
        self.keepalive: list = []
        self.counter = 0

    def mix(self, *chunks: bytes) -> None:
        for c in chunks:
            self.h.update(c)

    def walk(self, obj) -> None:
        mix = self.mix
        if obj is None:
            mix(b"N")
            return
        t = type(obj)
        if t is bool:
            mix(b"b1" if obj else b"b0")
            return
        if t is int:
            mix(b"i", str(obj).encode())
            return
        if t is float:
            mix(b"f", _F64.pack(obj))
            return
        if t is str:
            raw = obj.encode("utf-8", "surrogatepass")
            mix(b"s", _I64.pack(len(raw)), raw)
            return
        if t is bytes or t is bytearray:
            mix(b"y", _I64.pack(len(obj)), bytes(obj))
            return

        # containers and everything object-like: cycle/aliasing guard
        oid = id(obj)
        seen = self.memo.get(oid)
        if seen is not None:
            mix(b"R", _I64.pack(seen))
            return
        self.counter += 1
        self.memo[oid] = self.counter
        self.keepalive.append(obj)

        if t is tuple or t is list:
            mix(b"T" if t is tuple else b"L", _I64.pack(len(obj)))
            for item in obj:
                self.walk(item)
            return
        if t is deque:
            mix(b"Q", _I64.pack(len(obj)))
            for item in obj:
                self.walk(item)
            return
        if t is dict or t is OrderedDict:
            mix(b"D", _I64.pack(len(obj)))
            for k, v in obj.items():
                self.walk(k)
                self.walk(v)
            return
        if t is set or t is frozenset:
            digests = []
            for item in obj:
                sub = _Hasher()
                sub.walk(item)
                digests.append(sub.h.digest())
            mix(b"S", _I64.pack(len(obj)), *sorted(digests))
            return
        if isinstance(obj, random.Random):
            mix(b"G")
            self.walk(obj.getstate())
            return
        if _np is not None and isinstance(obj, _np.ndarray):
            arr = _np.ascontiguousarray(obj)
            mix(b"A", str(arr.dtype).encode(), _I64.pack(arr.ndim),
                *(_I64.pack(d) for d in arr.shape), arr.tobytes())
            return
        if isinstance(obj, type):
            mix(b"C", f"{obj.__module__}.{obj.__qualname__}".encode())
            return

        # suspended generator: code identity + resume point + frame state
        if hasattr(obj, "gi_frame"):
            code = obj.gi_code
            mix(b"g", f"{code.co_filename.rsplit('/', 1)[-1]}:"
                      f"{getattr(code, 'co_qualname', code.co_name)}".encode())
            frame = obj.gi_frame
            if frame is None:  # finished generator
                mix(b"x")
            else:
                mix(_I64.pack(frame.f_lasti))
                self.walk(frame.f_locals)
            yf = getattr(obj, "gi_yieldfrom", None)
            if yf is not None:
                self.walk(yf)
            return

        # bound method: code identity + receiver state
        if hasattr(obj, "__func__") and hasattr(obj, "__self__"):
            func = obj.__func__
            mix(b"m", f"{func.__module__}.{func.__qualname__}".encode())
            self.walk(obj.__self__)
            return

        # plain function / lambda / closure: identity + captured cells
        if callable(obj) and hasattr(obj, "__code__"):
            mix(b"F", f"{obj.__module__}.{obj.__qualname__}".encode())
            for cell in obj.__closure__ or ():
                try:
                    contents = cell.cell_contents
                except ValueError:  # empty cell
                    mix(b"e")
                else:
                    self.walk(contents)
            return

        # enums hash by class + name (value covered by class identity)
        if hasattr(obj, "_name_") and hasattr(obj, "_value_"):
            mix(b"E", f"{t.__module__}.{t.__qualname__}"
                      f".{obj._name_}".encode())
            return

        # generic object: class identity + attribute dict and/or slots
        mix(b"O", f"{t.__module__}.{t.__qualname__}".encode())
        d = getattr(obj, "__dict__", None)
        if d is not None:
            mix(b"d", _I64.pack(len(d)))
            for k, v in d.items():
                self.walk(k)
                self.walk(v)
        slots = _all_slots(t)
        if slots:
            mix(b"t", _I64.pack(len(slots)))
            for name in slots:
                mix(name.encode())
                try:
                    self.walk(getattr(obj, name))
                except AttributeError:
                    mix(b"u")  # slot never assigned
        if d is None and not slots:
            # opaque leaf (e.g. a C-level object): fall back to repr so
            # at least type + printable state participate
            mix(b"r", repr(obj).encode())


def _all_slots(cls: type) -> tuple[str, ...]:
    names: list[str] = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for s in slots:
            if s not in ("__dict__", "__weakref__") and s not in names:
                names.append(s)
    return tuple(names)


def fingerprint(obj) -> str:
    """SHA-256 hex digest of ``obj``'s reachable structural state."""
    hasher = _Hasher()
    hasher.walk(obj)
    return hasher.h.hexdigest()


def fingerprint_update(hasher: "hashlib._Hash", obj) -> None:
    """Fold ``obj``'s fingerprint into an existing hashlib hasher."""
    hasher.update(fingerprint(obj).encode())
