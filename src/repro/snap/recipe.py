"""Replay-tier snapshots: genesis recipe + event cursor.

The kernel is deterministic: a simulation is fully determined by how it
was built (the genesis) and how many events have run (the cursor).
Suspended generator frames — which Python cannot serialize — therefore
never need to be: a replay checkpoint records the *name* of a
registered builder, its (picklable) parameters, and ``events_run`` at
the capture point.  :func:`restore_replay` re-invokes the builder from
scratch and re-runs exactly ``cursor`` events, arriving at the same
state the snapshot captured — including every suspended frame, armed
fault process, and in-flight packet, because they are all reconstructed
by the same event sequence.

Trust is verified, not assumed: the capture stamps a structural
:func:`~repro.snap.fingerprint.fingerprint` of the session, and restore
recomputes it after replaying.  A mismatch means the recipe no longer
reproduces the run (code drift, an unpinned iteration order) and raises
:class:`~repro.snap.format.SnapshotDivergenceError` instead of handing
back a silently different simulation.

Builders register by name in :data:`BUILDERS` (see
:mod:`repro.snap.programs` for the standard transfer workloads and
:mod:`repro.faults.chaos` for the chaos-scenario builder).  A builder
takes a parameter dict and returns a :class:`Session`; it must be
deterministic given its parameters and a reset id/RNG environment —
:func:`build_session` resets the global id allocators before invoking
it, so blobs hash identically no matter what ran earlier in the
process.
"""

from __future__ import annotations

import pickle
import zlib
from typing import Callable

from ..sim.ids import reset_ids
from .fingerprint import fingerprint
from .format import (TIER_REPLAY, SnapshotDivergenceError, SnapshotStateError,
                     SnapshotVersionError, decode, encode)
from .state import canonical_dumps

__all__ = ["BUILDERS", "Session", "register_builder", "build_session",
           "checkpoint_replay", "restore_replay"]

#: registered genesis builders: name -> (params dict -> Session)
BUILDERS: dict[str, Callable[[dict], "Session"]] = {}


def register_builder(name: str):
    """Decorator registering a genesis builder under ``name``."""
    def deco(fn: Callable[[dict], "Session"]):
        BUILDERS[name] = fn
        return fn
    return deco


class Session:
    """One replayable simulation: a testbed plus its root processes.

    Builders return one of these; the snapshot layer drives it either
    event-by-event (``run_events``) to reach a capture/restore point or
    to completion (``drive``), which finishes every root process in
    spawn order, drains the queue, and returns the result board.
    """

    def __init__(self, testbed, procs: list, board: dict) -> None:
        self.testbed = testbed
        self.procs = list(procs)
        self.board = board
        #: set by build_session: how to rebuild this session from nothing
        self.genesis: dict | None = None

    @property
    def sim(self):
        return self.testbed.sim

    @property
    def events_run(self) -> int:
        return self.testbed.sim.events_run

    def run_events(self, n: int) -> int:
        """Advance exactly ``n`` events (fewer if the queue drains)."""
        return self.testbed.sim.run_events(n)

    def drive(self) -> dict:
        """Run every root process to completion, drain, return the board.

        Safe to call after a partial ``run_events``: processes that
        already finished return immediately.
        """
        for proc in self.procs:
            self.testbed.run(proc)
        self.testbed.run()
        return self.board


def build_session(builder: str, params: dict) -> Session:
    """Invoke a registered builder in a canonical environment.

    Resets the global id allocators first, so the session — and any
    blob captured from it — is identical whether it is the first
    simulation of the process or the hundredth.
    """
    if builder not in BUILDERS:
        # standard builders register on import; pull them in so a blob
        # can be restored in a process that never touched those modules
        from . import programs  # noqa: F401

        if builder == "chaos":
            from ..faults import chaos  # noqa: F401
    try:
        fn = BUILDERS[builder]
    except KeyError:
        raise SnapshotVersionError(
            f"unknown genesis builder {builder!r}; registered: "
            f"{sorted(BUILDERS)}") from None
    reset_ids()
    session = fn(dict(params))
    session.genesis = {"builder": builder, "params": dict(params)}
    return session


def _session_fingerprint(session: Session) -> str:
    sim = session.testbed.sim
    # pools are allocation-history caches, not state; exclude them the
    # same way the state tier does so capture/verify always agree
    sim._list_pool.clear()
    sim._kick_pool.clear()
    sim._timeout_pool.clear()
    return fingerprint((session.testbed, session.procs, session.board))


def checkpoint_replay(session: Session) -> bytes:
    """Capture ``session`` at its current event cursor (any point)."""
    if session.genesis is None:
        raise SnapshotStateError(
            "session has no genesis recipe; build it via "
            "repro.snap.build_session() to make it checkpointable")
    sim = session.testbed.sim
    if sim.active_process is not None:
        raise SnapshotStateError(
            f"cannot checkpoint while process "
            f"{sim.active_process.name!r} is mid-step")
    payload = zlib.compress(canonical_dumps(session.genesis), 6)
    meta = {
        "provider": session.testbed.name,
        "now_us": sim._now,
        "events_run": sim.events_run,
        "fingerprint": _session_fingerprint(session),
    }
    return encode(TIER_REPLAY, payload, meta)


def restore_replay(blob: bytes) -> Session:
    """Rebuild a session from its recipe and replay to the cursor.

    The restored session's structural fingerprint must match the one
    captured, or :class:`SnapshotDivergenceError` is raised.
    """
    tier, payload, meta = decode(blob)
    if tier != TIER_REPLAY:
        raise SnapshotVersionError(
            "blob is a state-tier snapshot; restore it with "
            "repro.snap.restore_state()")
    genesis = pickle.loads(zlib.decompress(payload))
    session = build_session(genesis["builder"], genesis["params"])
    cursor = meta["events_run"]
    ran = session.run_events(cursor)
    if ran != cursor:
        raise SnapshotDivergenceError(
            f"replay drained after {ran} events; the checkpoint was "
            f"taken at event {cursor} — the recipe no longer reproduces "
            "the original run")
    got = _session_fingerprint(session)
    want = meta.get("fingerprint")
    if got != want:
        raise SnapshotDivergenceError(
            f"replayed state diverges from the checkpoint at event "
            f"{cursor} (fingerprint {got[:12]}... != {str(want)[:12]}...); "
            "the code or builder no longer reproduces the captured run")
    return session
