"""State-tier snapshots: full serialization at quiescent points.

At a quiescent point — event heap, same-timestamp buckets, and the
immediate kick queue all empty, no process mid-step — every live object
in a testbed is plain data: counters, deques of completed descriptors,
RNG streams, LRU caches, connection tables.  :func:`snapshot_state`
serializes the whole :class:`~repro.providers.registry.Testbed` graph
with a canonical pickler and frames it as a ``TIER_STATE`` blob;
:func:`restore_state` rebuilds an identical testbed that continues the
simulation bit-for-bit.

Canonical means the bytes are a pure function of the simulation state:

- object pools (recycled lists/kicks/timeouts) are emptied first —
  they are caches whose contents depend on allocation history that the
  simulation itself cannot observe;
- sets and frozensets pickle as sorted element lists, removing the
  PYTHONHASHSEED dependence of set iteration order;
- the global id allocators are captured in the header and exact-set on
  restore, so ids handed out after a restore match the ids the
  original run would have handed out.

Suspended generator frames cannot be serialized from Python; a process
that is alive but waiting (a server blocked in an accept loop, an
armed fault process) makes the state tier refuse with
:class:`~repro.snap.format.SnapshotStateError` — use the replay tier
(:mod:`repro.snap.recipe`) for those points.
"""

from __future__ import annotations

import inspect
import io
import pickle
import pickletools
import zlib

from ..sim.ids import capture_ids, restore_ids
from .fingerprint import fingerprint
from .format import (TIER_STATE, SnapshotStateError, SnapshotVersionError,
                     decode, encode)

__all__ = ["snapshot_state", "restore_state", "check_quiescent",
           "canonical_dumps"]

_PROTOCOL = 4  # fixed: the blob format pins the pickle protocol too


class _CanonicalPickler(pickle.Pickler):
    """Pickler producing bytes independent of hash seed and history."""

    def reducer_override(self, obj):
        if inspect.isgenerator(obj):
            code = obj.gi_code
            raise SnapshotStateError(
                "cannot serialize a suspended generator frame "
                f"({getattr(code, 'co_qualname', code.co_name)}); snapshot "
                "at a quiescent point with no waiting processes, or take a "
                "replay-tier checkpoint instead")
        t = type(obj)
        if t is set or t is frozenset:
            return t, (_sorted_elements(obj),)
        return NotImplemented


def _sorted_elements(s) -> list:
    try:
        return sorted(s)
    except TypeError:
        # heterogeneous / unorderable elements: order by structural digest
        return sorted(s, key=fingerprint)


def canonical_dumps(obj) -> bytes:
    """Canonically pickle ``obj`` (fixed protocol, canonicalized sets)."""
    buf = io.BytesIO()
    _CanonicalPickler(buf, protocol=_PROTOCOL).dump(obj)
    # memo indices inside the stream still depend on traversal, which is
    # deterministic; optimize() strips unused PUTs so equal graphs that
    # differ only in dead memo entries collapse to equal bytes
    return pickletools.optimize(buf.getvalue())


def check_quiescent(sim) -> None:
    """Raise :class:`SnapshotStateError` unless ``sim`` is between events
    with nothing scheduled."""
    pending = []
    if sim._immediate:
        pending.append(f"{len(sim._immediate)} immediate kick(s)")
    if sim._heap or sim._buckets:
        n = len(sim._heap) + sum(len(b) for b in sim._buckets.values())
        pending.append(f"{n} scheduled event(s)")
    if sim.active_process is not None:
        pending.append(f"active process {sim.active_process.name!r}")
    if pending:
        raise SnapshotStateError(
            "simulation is not quiescent: " + ", ".join(pending) +
            " — run to completion first, or take a replay-tier checkpoint")


def snapshot_state(testbed, extra_meta: dict | None = None) -> bytes:
    """Serialize a quiescent ``testbed`` into a canonical state blob."""
    sim = testbed.sim
    check_quiescent(sim)
    # pools are invisible caches; empty them so the bytes don't depend
    # on how many events happened to recycle before the snapshot
    sim._list_pool.clear()
    sim._kick_pool.clear()
    sim._timeout_pool.clear()
    try:
        payload = zlib.compress(canonical_dumps(testbed), 6)
    except TypeError as exc:
        # Process.__getstate__ refuses live generators with a TypeError;
        # surface it as the snapshot-layer error the caller expects
        raise SnapshotStateError(str(exc)) from None
    meta = {
        "provider": testbed.name,
        "now_us": sim._now,
        "events_run": sim.events_run,
        "ids": capture_ids(),
    }
    if extra_meta:
        meta.update(extra_meta)
    return encode(TIER_STATE, payload, meta)


def restore_state(blob: bytes):
    """Rebuild the testbed a state blob captured.

    Also exact-sets the global id allocators to the captured baseline,
    so every id handed out after the restore matches what the original
    process would have allocated — restored runs are id-deterministic,
    not merely behavior-deterministic.
    """
    tier, payload, meta = decode(blob)
    if tier != TIER_STATE:
        raise SnapshotVersionError(
            "blob is a replay-tier checkpoint; restore it with "
            "repro.snap.restore_replay()")
    testbed = pickle.loads(zlib.decompress(payload))
    restore_ids(meta.get("ids", {}))
    return testbed
