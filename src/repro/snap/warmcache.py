"""Process-local warm-start pool: shared construction checkpoints.

Sweeps build hundreds of testbeds that differ only in workload
parameters, not in construction inputs.  With warm start enabled,
:func:`get_or_build` snapshots one freshly-constructed testbed per
distinct ``(provider, constructor kwargs, code version)`` and every
subsequent cell *restores* from that blob instead of re-running
construction.  Crucially the **first** cell also goes through
``snapshot -> restore``, so every cell — first or hundredth, serial or
in a worker process — takes the identical code path and produces
byte-identical results; cold runs differ only in wall-clock.

Eligibility is conservative: named providers only (spec objects can be
mutated by ablation studies), and no armed faults (an armed injector
spawns live processes the state tier refuses).  Ineligible cells fall
back to cold construction transparently.

The pool is per-process.  Parallel sweeps enable it in each worker via
the executor initializer (see ``repro.vibe.executor.parallel_map``);
workers rebuild the blob once on first use — deterministically, so the
same bytes — and reuse it for every cell they are handed.
"""

from __future__ import annotations

from .format import snapshot_key

__all__ = ["enable_warm_start", "warm_enabled", "get_or_build",
           "clear_pool", "pool_stats"]

_enabled = False
_pool: dict[str, bytes] = {}
_hits = 0
_builds = 0


def enable_warm_start(on: bool = True) -> None:
    """Turn the process-local warm-start pool on or off."""
    global _enabled
    _enabled = bool(on)


def warm_enabled() -> bool:
    return _enabled


def clear_pool() -> None:
    global _hits, _builds
    _pool.clear()
    _hits = 0
    _builds = 0


def pool_stats() -> dict:
    return {"entries": len(_pool), "hits": _hits, "builds": _builds}


def _eligible(provider, kwargs: dict) -> bool:
    if not isinstance(provider, str):
        return False
    if kwargs.get("faults") is not None:
        return False
    return True


def get_or_build(provider, kwargs: dict) -> bytes | None:
    """Return the construction blob for this cell, or None if ineligible.

    Builds (and caches) the blob on first request for a given key by
    constructing one cold testbed and state-snapshotting it before any
    process runs.
    """
    global _hits, _builds
    if not _eligible(provider, kwargs):
        return None
    canon = repr((provider, sorted(kwargs.items())))
    key = snapshot_key(canon, int(kwargs.get("seed", 0)))
    blob = _pool.get(key)
    if blob is not None:
        _hits += 1
        return blob
    from ..providers.registry import Testbed
    from .state import snapshot_state

    tb = Testbed(provider, **kwargs)
    blob = snapshot_state(tb, extra_meta={"warm_key": key})
    _pool[key] = blob
    _builds += 1
    return blob
