"""Canonical snapshot blob format: framing, versioning, content hash.

Every snapshot — state tier or replay tier — is one byte string::

    b"VIBESNAP" | u16 format version | u8 tier | u8 reserved |
    u32 header length | header JSON (sorted keys, compact) | payload

The header carries the code version the blob was written by, the
SHA-256 of the payload, and tier-specific metadata (provider, seed,
simulated time, event cursor).  :func:`decode` refuses blobs whose
magic, format version, or code version do not match — a clear
:class:`SnapshotVersionError` instead of silently unpickling foreign
state — and verifies the payload hash (:class:`SnapshotIntegrityError`
on corruption) before any payload byte is interpreted.

The blob's identity is :func:`blob_hash`, a SHA-256 over the entire
byte string; because the payload encodings are canonical (sorted-key
JSON, insertion-ordered pickles with canonicalized sets, id allocators
reset per capture), the hash is a pure function of (config, seed, code
version) — the content-address the warm-start cache and the golden
tests key on.
"""

from __future__ import annotations

import hashlib
import json
import struct

from .. import __version__

__all__ = [
    "MAGIC", "FORMAT_VERSION", "CODE_VERSION",
    "TIER_STATE", "TIER_REPLAY",
    "SnapshotError", "SnapshotVersionError", "SnapshotIntegrityError",
    "SnapshotStateError", "SnapshotDivergenceError",
    "encode", "decode", "blob_hash", "snapshot_key",
]

MAGIC = b"VIBESNAP"
#: bump on any change to the framing or the payload encodings —
#: including new fields in the pickled state tier (v2: providers carry
#: an admission-control ``conn_rejects`` counter)
FORMAT_VERSION = 2
#: stamped into every header; a restore across package versions refuses
CODE_VERSION = f"repro-{__version__}/snap-{FORMAT_VERSION}"

TIER_STATE = 1    # full serialized state (quiescent points)
TIER_REPLAY = 2   # genesis recipe + event cursor (any point)

_HEAD = struct.Struct(">HBBI")  # format version, tier, reserved, header len


class SnapshotError(Exception):
    """Base class for everything the snapshot layer raises."""


class SnapshotVersionError(SnapshotError):
    """The blob was written by an incompatible format or code version."""


class SnapshotIntegrityError(SnapshotError):
    """The blob's payload does not match its recorded content hash."""


class SnapshotStateError(SnapshotError):
    """The simulation is not in a serializable state (live processes)."""


class SnapshotDivergenceError(SnapshotError):
    """A replayed simulation did not reproduce the captured state."""


def encode(tier: int, payload: bytes, meta: dict) -> bytes:
    """Frame ``payload`` into a versioned, content-hashed blob."""
    if tier not in (TIER_STATE, TIER_REPLAY):
        raise ValueError(f"unknown snapshot tier {tier}")
    header = {
        "code_version": CODE_VERSION,
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "meta": meta,
    }
    head_bytes = json.dumps(header, sort_keys=True,
                            separators=(",", ":")).encode()
    return b"".join([
        MAGIC,
        _HEAD.pack(FORMAT_VERSION, tier, 0, len(head_bytes)),
        head_bytes,
        payload,
    ])


def decode(blob: bytes) -> tuple[int, bytes, dict]:
    """Split a blob into ``(tier, payload, meta)``, verifying everything.

    Raises :class:`SnapshotVersionError` on a foreign or tampered
    magic/version field and :class:`SnapshotIntegrityError` when the
    payload bytes do not hash to the recorded digest.
    """
    if not isinstance(blob, (bytes, bytearray)):
        raise SnapshotVersionError(
            f"snapshot must be bytes, got {type(blob).__name__}")
    if len(blob) < len(MAGIC) + _HEAD.size or blob[:len(MAGIC)] != MAGIC:
        raise SnapshotVersionError(
            "not a VIBe snapshot: bad magic (expected "
            f"{MAGIC!r} at offset 0)")
    fmt, tier, _reserved, head_len = _HEAD.unpack_from(blob, len(MAGIC))
    if fmt != FORMAT_VERSION:
        raise SnapshotVersionError(
            f"snapshot format version {fmt} is not supported "
            f"(this build reads version {FORMAT_VERSION})")
    if tier not in (TIER_STATE, TIER_REPLAY):
        raise SnapshotVersionError(f"unknown snapshot tier {tier}")
    start = len(MAGIC) + _HEAD.size
    try:
        header = json.loads(blob[start:start + head_len])
    except ValueError as exc:
        raise SnapshotVersionError(f"unreadable snapshot header: {exc}") \
            from None
    code_version = header.get("code_version")
    if code_version != CODE_VERSION:
        raise SnapshotVersionError(
            f"snapshot was written by {code_version!r}; this build is "
            f"{CODE_VERSION!r} — re-create the checkpoint")
    payload = bytes(blob[start + head_len:])
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise SnapshotIntegrityError(
            "snapshot payload does not match its content hash "
            f"({digest[:12]}... != {str(header.get('payload_sha256'))[:12]}...)")
    return tier, payload, header.get("meta", {})


def blob_hash(blob: bytes) -> str:
    """The blob's content address: SHA-256 hex over the whole byte string."""
    return hashlib.sha256(blob).hexdigest()


def snapshot_key(config_repr: str, seed: int) -> str:
    """Content-address a snapshot *source*: (config, seed, code-version).

    Pure function of its arguments — identical across processes and
    machines — used by the warm-start cache and campaign checkpoints.
    """
    raw = repr((CODE_VERSION, config_repr, seed)).encode()
    return hashlib.sha256(raw).hexdigest()
