"""Standard genesis programs for replay-tier checkpoints.

The ``"transfer"`` builder covers the workload shapes the equivalence
suite exercises — ``pingpong``, ``stream``, ``rdma_write``, and
``segmented`` — on any provider, with optional fidelity modes and an
optional armed :class:`~repro.faults.plan.FaultPlan`.  Every workload
writes its observable results (per-iteration completion times, final
simulated time) into the session board, so a cold run and a
restored-and-finished run can be compared field by field.

:func:`warmed_testbed` is the state-tier companion: it builds a
two-node testbed, runs one full ping-pong (handshake, data, teardown)
to quiescence, and returns the testbed ready for
:func:`~repro.snap.state.snapshot_state` — the blob the golden tests
pin and the warm-start cache shares.
"""

from __future__ import annotations

from ..sim.ids import reset_ids
from ..via.constants import Reliability
from ..via.descriptor import Descriptor
from .recipe import Session, register_builder

__all__ = ["warmed_testbed", "transfer_session"]

_DISCRIMINATOR = 11
_WORKLOADS = ("pingpong", "stream", "rdma_write", "segmented")


def _reliability(params: dict) -> Reliability | None:
    name = params.get("reliability")
    return Reliability(name) if name is not None else None


@register_builder("transfer")
def transfer_session(params: dict) -> Session:
    """Two-node data-transfer session, parameterized by ``workload``."""
    from ..providers.registry import Testbed

    workload = params.get("workload", "pingpong")
    if workload not in _WORKLOADS:
        raise ValueError(
            f"unknown transfer workload {workload!r}; one of {_WORKLOADS}")
    size = int(params.get("size", 256))
    count = int(params.get("count", 8))
    segments = int(params.get("segments", 4 if workload == "segmented" else 1))
    tb = Testbed(
        params.get("provider", "clan"),
        seed=int(params.get("seed", 0)),
        loss_rate=params.get("loss_rate"),
        check=bool(params.get("check", False)),
        faults=params.get("faults"),
        fidelity=params.get("fidelity", "packet"),
    )
    if params.get("trace"):
        # attached at genesis, so replay reproduces the full event log
        from ..sim.trace import Tracer

        tb.sim.tracer = Tracer()
    reliability = _reliability(params)
    board: dict = {"completed_at": []}

    def segs_for(h, region, mh):
        if segments == 1:
            return [h.segment(region, mh, 0, size)]
        base = size // segments
        sizes = [base] * segments
        sizes[-1] += size - base * segments
        out, off = [], 0
        for s in sizes:
            out.append(h.segment(region, mh, off, s))
            off += s
        return out

    if workload == "rdma_write":
        client_body, server_body = _rdma_write_pair(
            tb, board, size, count, reliability)
    elif workload == "stream":
        client_body, server_body = _stream_pair(
            tb, board, size, count, reliability, segs_for)
    else:  # pingpong / segmented share the echo engine
        client_body, server_body = _pingpong_pair(
            tb, board, size, count, reliability, segs_for)

    procs = [tb.spawn(client_body(), "client"),
             tb.spawn(server_body(), "server")]
    return Session(tb, procs, board)


def _pingpong_pair(tb, board, size, count, reliability, segs_for):
    def client_body():
        h = tb.open(tb.node_names[0], "client")
        vi = yield from h.create_vi(reliability=reliability)
        region = h.alloc(max(size, 4))
        mh = yield from h.register_mem(region)
        segs = segs_for(h, region, mh)
        yield from h.post_recv(vi, Descriptor.recv(segs))
        yield from h.connect(vi, tb.node_names[1], _DISCRIMINATOR)
        for i in range(count):
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)
            done = yield from h.recv_wait(vi)
            board["completed_at"].append(done.completed_at)
            if i + 1 < count:
                yield from h.post_recv(vi, Descriptor.recv(segs))
        board["client_done"] = tb.now
        yield from h.disconnect(vi)

    def server_body():
        h = tb.open(tb.node_names[1], "server")
        vi = yield from h.create_vi(reliability=reliability)
        region = h.alloc(max(size, 4))
        mh = yield from h.register_mem(region)
        segs = segs_for(h, region, mh)
        yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(_DISCRIMINATOR)
        yield from h.accept(req, vi)
        for i in range(count):
            yield from h.recv_wait(vi)
            if i + 1 < count:
                yield from h.post_recv(vi, Descriptor.recv(segs))
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)
        board["server_done"] = tb.now

    return client_body, server_body


def _stream_pair(tb, board, size, count, reliability, segs_for):
    window = 8

    def client_body():
        h = tb.open(tb.node_names[0], "client")
        vi = yield from h.create_vi(reliability=reliability)
        region = h.alloc(max(size, 4))
        mh = yield from h.register_mem(region)
        segs = segs_for(h, region, mh)
        ctl = h.alloc(4)
        ctl_mh = yield from h.register_mem(ctl)
        # final-ack receive pre-posted before connect, so it can never
        # race the server's send (same discipline as the harness)
        yield from h.post_recv(
            vi, Descriptor.recv([h.segment(ctl, ctl_mh, 0, 4)]))
        yield from h.connect(vi, tb.node_names[1], _DISCRIMINATOR)
        inflight = 0
        for _ in range(count):
            if inflight >= window:
                done = yield from h.send_wait(vi)
                board["completed_at"].append(done.completed_at)
                inflight -= 1
            yield from h.post_send(vi, Descriptor.send(segs))
            inflight += 1
        while inflight:
            done = yield from h.send_wait(vi)
            board["completed_at"].append(done.completed_at)
            inflight -= 1
        yield from h.recv_wait(vi)   # server acks the last message
        board["client_done"] = tb.now
        yield from h.disconnect(vi)

    def server_body():
        h = tb.open(tb.node_names[1], "server")
        vi = yield from h.create_vi(reliability=reliability)
        region = h.alloc(max(size, 4))
        mh = yield from h.register_mem(region)
        segs = segs_for(h, region, mh)
        for _ in range(count):
            yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(_DISCRIMINATOR)
        yield from h.accept(req, vi)
        for _ in range(count):
            yield from h.recv_wait(vi)
        ctl = h.alloc(4)
        ctl_mh = yield from h.register_mem(ctl)
        yield from h.post_send(
            vi, Descriptor.send([h.segment(ctl, ctl_mh, 0, 4)]))
        yield from h.send_wait(vi)
        board["server_done"] = tb.now

    return client_body, server_body


def _rdma_write_pair(tb, board, size, count, reliability):
    target: dict = {}

    def client_body():
        h = tb.open(tb.node_names[0], "client")
        vi = yield from h.create_vi(reliability=reliability)
        region = h.alloc(max(size, 4))
        mh = yield from h.register_mem(region)
        yield from h.connect(vi, tb.node_names[1], _DISCRIMINATOR)
        while "addr" not in target:
            yield tb.sim.timeout(1.0)
        raddr, rhid = target["addr"]
        segs = [h.segment(region, mh, 0, size)]
        for i in range(count):
            # immediate data consumes a server receive, giving the
            # remote side a completion per write to synchronize on
            desc = Descriptor.rdma_write(segs, raddr, rhid, immediate=i)
            yield from h.post_send(vi, desc)
            done = yield from h.send_wait(vi)
            board["completed_at"].append(done.completed_at)
        board["client_done"] = tb.now
        yield from h.disconnect(vi)

    def server_body():
        h = tb.open(tb.node_names[1], "server")
        vi = yield from h.create_vi(reliability=reliability)
        region = h.alloc(max(size, 4))
        mh = yield from h.register_mem(region, enable_rdma_write=True)
        for _ in range(count):
            yield from h.post_recv(vi, Descriptor.recv([]))
        req = yield from h.connect_wait(_DISCRIMINATOR)
        yield from h.accept(req, vi)
        target["addr"] = (region.base, mh.handle_id)
        for _ in range(count):
            yield from h.recv_wait(vi)
        board["server_done"] = tb.now

    return client_body, server_body


def warmed_testbed(provider: str, seed: int = 0, iters: int = 1):
    """Build a two-node testbed and warm it to a quiescent, snapshottable
    point: ``iters`` complete ping-pongs including handshake and teardown.

    Resets the global id allocators first, so the resulting state blob
    is a pure function of ``(provider, seed, iters, code version)``.
    """
    from ..providers.registry import Testbed

    reset_ids()
    tb = Testbed(provider, seed=seed)

    def client():
        h = tb.open(tb.node_names[0], "warm-client")
        vi = yield from h.create_vi()
        region = h.alloc(256)
        mh = yield from h.register_mem(region)
        segs = [h.segment(region, mh, 0, 256)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        yield from h.connect(vi, tb.node_names[1], _DISCRIMINATOR)
        for i in range(iters):
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)
            yield from h.recv_wait(vi)
            if i + 1 < iters:
                yield from h.post_recv(vi, Descriptor.recv(segs))
        yield from h.disconnect(vi)

    def server():
        h = tb.open(tb.node_names[1], "warm-server")
        vi = yield from h.create_vi()
        region = h.alloc(256)
        mh = yield from h.register_mem(region)
        segs = [h.segment(region, mh, 0, 256)]
        yield from h.post_recv(vi, Descriptor.recv(segs))
        req = yield from h.connect_wait(_DISCRIMINATOR)
        yield from h.accept(req, vi)
        for i in range(iters):
            yield from h.recv_wait(vi)
            if i + 1 < iters:
                yield from h.post_recv(vi, Descriptor.recv(segs))
            yield from h.post_send(vi, Descriptor.send(segs))
            yield from h.send_wait(vi)

    cproc = tb.spawn(client(), "warm-client")
    sproc = tb.spawn(server(), "warm-server")
    tb.run(cproc)
    tb.run(sproc)
    tb.run()
    return tb
