"""Deterministic checkpoint/restore for live simulations.

Two complementary tiers, one blob format (:mod:`repro.snap.format`):

- **state tier** (:mod:`repro.snap.state`): full canonical
  serialization at quiescent points — the event queue is empty, so
  every object is plain data.  Fast to restore, works for any testbed
  regardless of how it was built.
- **replay tier** (:mod:`repro.snap.recipe`): genesis recipe + event
  cursor, valid at *any* point — mid-handshake, mid-burst, with armed
  fault processes.  Restore re-runs the recorded builder to the cursor
  and verifies a structural fingerprint.

:func:`snapshot` / :func:`restore` dispatch on what you hand them; the
tier-specific entry points are exported for callers that care.

Correctness bar (proven by ``tests/test_snapshot_equivalence.py``): for
any snapshot point, running the original to completion and running a
restored copy to completion produce bit-identical completions, harvest
counters, and traces on every provider.
"""

from __future__ import annotations

from .format import (CODE_VERSION, FORMAT_VERSION, MAGIC, TIER_REPLAY,
                     TIER_STATE, SnapshotDivergenceError, SnapshotError,
                     SnapshotIntegrityError, SnapshotStateError,
                     SnapshotVersionError, blob_hash, decode, encode,
                     snapshot_key)
from .fingerprint import fingerprint
from .recipe import (BUILDERS, Session, build_session, checkpoint_replay,
                     register_builder, restore_replay)
from .state import check_quiescent, restore_state, snapshot_state
from .warmcache import (clear_pool, enable_warm_start, get_or_build,
                        pool_stats, warm_enabled)

# registering the standard builders is a side effect of importing them
from . import programs as _programs  # noqa: F401
from .programs import transfer_session, warmed_testbed

__all__ = [
    "MAGIC", "FORMAT_VERSION", "CODE_VERSION", "TIER_STATE", "TIER_REPLAY",
    "SnapshotError", "SnapshotVersionError", "SnapshotIntegrityError",
    "SnapshotStateError", "SnapshotDivergenceError",
    "encode", "decode", "blob_hash", "snapshot_key", "fingerprint",
    "snapshot", "restore",
    "snapshot_state", "restore_state", "check_quiescent",
    "BUILDERS", "Session", "register_builder", "build_session",
    "checkpoint_replay", "restore_replay",
    "transfer_session", "warmed_testbed",
    "enable_warm_start", "warm_enabled", "get_or_build", "clear_pool",
    "pool_stats",
]


def snapshot(target) -> bytes:
    """Checkpoint ``target``: a :class:`Session` takes the replay tier
    (valid anywhere), a testbed takes the state tier (quiescent only)."""
    if isinstance(target, Session):
        return checkpoint_replay(target)
    return snapshot_state(target)


def restore(blob: bytes):
    """Rebuild whatever ``blob`` captured: a testbed for state-tier
    blobs, a :class:`Session` for replay-tier blobs."""
    tier, _payload, _meta = decode(blob)
    if tier == TIER_STATE:
        return restore_state(blob)
    return restore_replay(blob)
