"""repro — a reproduction of the VIBe micro-benchmark suite (IPPS 2001).

The package implements, from scratch:

- :mod:`repro.sim` — a deterministic discrete-event simulation kernel;
- :mod:`repro.hw` — host/NIC/fabric hardware models;
- :mod:`repro.via` — the Virtual Interface Architecture spec layer;
- :mod:`repro.providers` — three simulated VIA implementations
  (M-VIA on Gigabit Ethernet, Berkeley VIA on Myrinet, cLAN on
  Giganet) plus a configurable design-choice engine;
- :mod:`repro.vibe` — the VIBe micro-benchmark suite itself;
- :mod:`repro.layers` — programming-model layers over VIA (messages,
  streams, get/put, RPC);
- :mod:`repro.models` — LogP parameter extraction and analysis.

Quick start::

    from repro.vibe import base_latency
    result = base_latency("clan", sizes=[4, 1024])
    print(result.table())
"""

__version__ = "1.0.0"

from .providers import Testbed  # noqa: F401  (primary entry point)

__all__ = ["Testbed", "__version__"]
